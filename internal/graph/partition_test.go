package graph

import "testing"

// TestPodPartitionFatTree checks that a fat-tree decomposes into one class
// per pod and that every edge's class matches its non-core endpoint's pod.
func TestPodPartitionFatTree(t *testing.T) {
	for _, k := range []int{4, 6} {
		g := FatTree(k, 1.0)
		p := g.PodPartition()
		if p.Parts() != k {
			t.Fatalf("FatTree(%d): got %d parts, want %d (one per pod)", k, p.Parts(), k)
		}
		// Ownership is total and consistent: both directions of a duplex link
		// share a class, and classes cover every edge exactly once.
		seen := make([]int, p.Parts())
		for i := 0; i < g.NumEdges(); i++ {
			c := p.EdgePart(EdgeID(i))
			if c < 0 || c >= p.Parts() {
				t.Fatalf("edge %d: class %d out of range [0,%d)", i, c, p.Parts())
			}
			seen[c]++
			e := g.Edge(EdgeID(i))
			rev := -1
			for j := 0; j < g.NumEdges(); j++ {
				re := g.Edge(EdgeID(j))
				if re.From == e.To && re.To == e.From {
					rev = j
					break
				}
			}
			if rev >= 0 && p.EdgePart(EdgeID(rev)) != c {
				t.Fatalf("edge %d and reverse %d in different classes", i, rev)
			}
		}
		for c, n := range seen {
			if n == 0 {
				t.Fatalf("class %d owns no edges", c)
			}
		}
	}
}

// TestPodPartitionIntraPodPaths checks the cut-point property the parallel
// simulator relies on: a shortest path between two hosts of the same pod
// stays inside one class.
func TestPodPartitionIntraPodPaths(t *testing.T) {
	g := FatTree(4, 1.0)
	p := g.PodPartition()
	hosts := g.Hosts()
	perPod := len(hosts) / 4
	a, b := hosts[0], hosts[perPod-1] // same pod by construction order
	path := g.ShortestPath(a, b)
	if len(path) == 0 {
		t.Fatalf("no path between same-pod hosts %d and %d", a, b)
	}
	c := p.EdgePart(path[0])
	for _, e := range path {
		if p.EdgePart(e) != c {
			t.Fatalf("intra-pod path crosses classes: edge %d in %d, want %d", e, p.EdgePart(e), c)
		}
	}
}

// TestPodPartitionDegenerate checks coreless and deterministic behavior.
func TestPodPartitionDegenerate(t *testing.T) {
	g := Line(5, 1.0)
	p := g.PodPartition()
	if p.Parts() != 1 {
		t.Fatalf("Line(5): got %d parts, want 1 (no core cut points)", p.Parts())
	}
	// Determinism: two extractions agree edge for edge.
	ft := FatTree(4, 1.0)
	p1, p2 := ft.PodPartition(), ft.PodPartition()
	for i := 0; i < ft.NumEdges(); i++ {
		if p1.EdgePart(EdgeID(i)) != p2.EdgePart(EdgeID(i)) {
			t.Fatalf("nondeterministic partition at edge %d", i)
		}
	}
}

// TestCoalesce checks that folding preserves totality and bounds the count.
func TestCoalesce(t *testing.T) {
	g := FatTree(6, 1.0)
	p := g.PodPartition()
	for _, max := range []int{1, 2, 4} {
		q := p.Coalesce(max)
		if q.Parts() != max {
			t.Fatalf("Coalesce(%d): got %d parts", max, q.Parts())
		}
		for i := 0; i < g.NumEdges(); i++ {
			want := p.EdgePart(EdgeID(i)) % max
			if q.EdgePart(EdgeID(i)) != want {
				t.Fatalf("Coalesce(%d): edge %d class %d, want %d", max, i, q.EdgePart(EdgeID(i)), want)
			}
		}
	}
	if q := p.Coalesce(64); q != p {
		t.Fatalf("Coalesce above Parts() should return the receiver")
	}
	if q := p.Coalesce(0); q != p {
		t.Fatalf("Coalesce(0) should return the receiver")
	}
}

// TestKShortestPathsCached checks memoized results match the uncached search
// and that mutation invalidates the memo.
func TestKShortestPathsCached(t *testing.T) {
	g := FatTree(4, 1.0)
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	want := g.KShortestPaths(src, dst, 4)
	got := g.KShortestPathsCached(src, dst, 4)
	if len(got) != len(want) {
		t.Fatalf("cached returned %d paths, want %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("path %d differs in length", i)
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("path %d edge %d differs", i, j)
			}
		}
	}
	// Second call returns the identical shared slice.
	again := g.KShortestPathsCached(src, dst, 4)
	if len(again) > 0 && len(got) > 0 && &again[0] != &got[0] {
		t.Fatalf("cache miss on repeat lookup")
	}
	// Mutation drops the memo.
	n := g.AddNode("extra", KindHost)
	g.AddEdge(n, src, 1.0)
	fresh := g.KShortestPathsCached(src, dst, 4)
	if len(fresh) != len(want) {
		t.Fatalf("post-mutation lookup returned %d paths, want %d", len(fresh), len(want))
	}
}
