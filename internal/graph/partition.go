package graph

import "runtime"

// Pod partition extraction. Datacenter fabrics decompose at the core layer:
// removing the core switches splits a fat-tree into its pods (plus the
// core-adjacent uplinks), and flows that stay inside one pod never share an
// edge with flows confined to another. The parallel simulator exploits these
// cut points — each partition's edges are owned by one worker, so per-edge
// residual arithmetic needs no synchronization for intra-partition flows.

// EdgePartition assigns every directed edge of a graph to exactly one of
// Parts() disjoint classes. It is immutable once built.
type EdgePartition struct {
	parts int
	edge  []int32 // part index per EdgeID
}

// Parts returns the number of partition classes.
func (p *EdgePartition) Parts() int { return p.parts }

// NumEdges returns the number of edges the partition covers; consumers use
// it to check the partition was extracted from the graph they simulate.
func (p *EdgePartition) NumEdges() int { return len(p.edge) }

// EdgePart returns the class owning edge e.
func (p *EdgePartition) EdgePart(e EdgeID) int { return int(p.edge[e]) }

// PodPartition partitions the edge set by the connected components of the
// graph with core switches removed: two edges share a class iff they touch a
// common non-core component. In a fat-tree this yields one class per pod —
// host↔edge, edge↔agg and agg↔core links all belong to the pod of their
// non-core endpoint. Component labels are assigned in ascending order of the
// smallest node id in each component, so the partition is deterministic.
// Core↔core edges (absent from fat-trees) fall into class 0. Graphs without
// core switches (line, star, synthetic meshes) form a single class.
func (g *Graph) PodPartition() *EdgePartition {
	n := g.NumNodes()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	isCore := func(v NodeID) bool { return g.nodes[v].Kind == KindCoreSwitch }
	for _, e := range g.edges {
		if isCore(e.From) || isCore(e.To) {
			continue
		}
		a, b := find(int32(e.From)), find(int32(e.To))
		if a != b {
			if a > b { // smaller id becomes the root: deterministic labels
				a, b = b, a
			}
			parent[b] = a
		}
	}
	// Label components in ascending root-id order.
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	next := int32(0)
	for v := 0; v < n; v++ {
		if isCore(NodeID(v)) {
			continue
		}
		r := find(int32(v))
		if label[r] < 0 {
			label[r] = next
			next++
		}
	}
	if next == 0 {
		next = 1 // all-core graph: one class so EdgePart stays total
	}
	edge := make([]int32, len(g.edges))
	for i, e := range g.edges {
		switch {
		case !isCore(e.From):
			edge[i] = label[find(int32(e.From))]
		case !isCore(e.To):
			edge[i] = label[find(int32(e.To))]
		default:
			edge[i] = 0
		}
	}
	return &EdgePartition{parts: int(next), edge: edge}
}

// AutoPartitions picks a partition count for running this topology's
// simulator in parallel: the natural pod-partition width, capped at
// GOMAXPROCS — more classes than processors only adds merge overhead.
// Topologies without pod structure (line, star) report 1, the sequential
// core.
func (g *Graph) AutoPartitions() int {
	parts := g.PodPartition().Parts()
	if p := runtime.GOMAXPROCS(0); p < parts {
		parts = p
	}
	if parts < 1 {
		parts = 1
	}
	return parts
}

// Coalesce folds the partition down to at most maxParts classes by taking
// class ids modulo maxParts. It returns the receiver unchanged when it
// already fits (or maxParts <= 0). Folding keeps the ownership invariant —
// every edge still belongs to exactly one class — at the cost of coarser
// parallelism.
func (p *EdgePartition) Coalesce(maxParts int) *EdgePartition {
	if maxParts <= 0 || p.parts <= maxParts {
		return p
	}
	edge := make([]int32, len(p.edge))
	for i, c := range p.edge {
		edge[i] = c % int32(maxParts)
	}
	return &EdgePartition{parts: maxParts, edge: edge}
}
