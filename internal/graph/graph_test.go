package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestAddNodesAndEdges(t *testing.T) {
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	e := g.AddEdge(a, b, 2.5)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts = (%d,%d), want (2,1)", g.NumNodes(), g.NumEdges())
	}
	edge := g.Edge(e)
	if edge.From != a || edge.To != b || edge.Capacity != 2.5 {
		t.Errorf("edge = %+v", edge)
	}
	if len(g.Out(a)) != 1 || len(g.In(b)) != 1 || len(g.Out(b)) != 0 {
		t.Errorf("adjacency wrong: out(a)=%v in(b)=%v out(b)=%v", g.Out(a), g.In(b), g.Out(b))
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	for name, fn := range map[string]func(){
		"zero capacity":  func() { g.AddEdge(a, b, 0) },
		"negative cap":   func() { g.AddEdge(a, b, -1) },
		"bad endpoint":   func() { g.AddEdge(a, NodeID(99), 1) },
		"negative nodes": func() { g.AddEdge(NodeID(-1), b, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestBidirectional(t *testing.T) {
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	e1, e2 := g.AddBidirectional(a, b, 3)
	if g.Edge(e1).From != a || g.Edge(e2).From != b {
		t.Errorf("bidirectional edges wrong: %+v %+v", g.Edge(e1), g.Edge(e2))
	}
}

func TestHostsAndFindNode(t *testing.T) {
	g := Star(4, 1)
	hosts := g.Hosts()
	if len(hosts) != 4 {
		t.Fatalf("hosts = %d, want 4", len(hosts))
	}
	id, ok := g.FindNode("h2")
	if !ok {
		t.Fatalf("FindNode(h2) not found")
	}
	if g.Node(id).Name != "h2" {
		t.Errorf("FindNode returned wrong node %v", g.Node(id))
	}
	if _, ok := g.FindNode("nope"); ok {
		t.Errorf("FindNode(nope) should fail")
	}
}

func TestMinCapacity(t *testing.T) {
	g := New()
	if g.MinCapacity() != 0 {
		t.Errorf("empty graph MinCapacity = %v, want 0", g.MinCapacity())
	}
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	g.AddEdge(a, b, 5)
	g.AddEdge(b, a, 2)
	if g.MinCapacity() != 2 {
		t.Errorf("MinCapacity = %v, want 2", g.MinCapacity())
	}
}

func TestPathValidateAndNodes(t *testing.T) {
	g := Line(4, 1)
	src, _ := g.FindNode("h0")
	dst, _ := g.FindNode("h3")
	p := g.ShortestPath(src, dst)
	if p == nil {
		t.Fatal("no path found on line graph")
	}
	if err := p.Validate(g, src, dst); err != nil {
		t.Errorf("Validate: %v", err)
	}
	nodes := p.Nodes(g)
	if len(nodes) != len(p)+1 || nodes[0] != src || nodes[len(nodes)-1] != dst {
		t.Errorf("Nodes() = %v", nodes)
	}
	if err := p.Validate(g, dst, src); err == nil {
		t.Errorf("Validate with swapped endpoints should fail")
	}
	var empty Path
	if err := empty.Validate(g, src, src); err != nil {
		t.Errorf("empty path src==dst should validate: %v", err)
	}
	if err := empty.Validate(g, src, dst); err == nil {
		t.Errorf("empty path src!=dst should fail")
	}
}

func TestPathMinCapacity(t *testing.T) {
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	c := g.AddNode("c", KindHost)
	e1 := g.AddEdge(a, b, 5)
	e2 := g.AddEdge(b, c, 2)
	p := Path{e1, e2}
	if p.MinCapacity(g) != 2 {
		t.Errorf("MinCapacity = %v, want 2", p.MinCapacity(g))
	}
	var empty Path
	if empty.MinCapacity(g) != 0 {
		t.Errorf("empty MinCapacity = %v, want 0", empty.MinCapacity(g))
	}
}

func TestReachable(t *testing.T) {
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	c := g.AddNode("c", KindHost)
	g.AddEdge(a, b, 1)
	if !g.Reachable(a, b) || g.Reachable(b, a) {
		t.Errorf("reachability wrong for a->b")
	}
	if g.Reachable(a, c) {
		t.Errorf("c should be unreachable")
	}
	if !g.Reachable(a, a) {
		t.Errorf("node should reach itself")
	}
}

func TestTriangleTopology(t *testing.T) {
	g := Triangle()
	if g.NumNodes() != 3 || g.NumEdges() != 6 {
		t.Fatalf("triangle: %d nodes %d edges, want 3, 6", g.NumNodes(), g.NumEdges())
	}
	if !g.StronglyConnectedHosts() {
		t.Errorf("triangle should be strongly connected")
	}
	if g.MinCapacity() != 1 {
		t.Errorf("triangle capacities should be 1")
	}
}

func TestLineRingStarGrid(t *testing.T) {
	if g := Line(5, 2); g.NumNodes() != 5 || g.NumEdges() != 8 {
		t.Errorf("line(5): %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g := Ring(5, 1); g.NumNodes() != 5 || g.NumEdges() != 10 {
		t.Errorf("ring(5): %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g := Star(6, 1); len(g.Hosts()) != 6 || g.NumEdges() != 12 {
		t.Errorf("star(6): %d hosts %d edges", len(g.Hosts()), g.NumEdges())
	}
	g := Grid(3, 4, 1)
	if g.NumNodes() != 12 {
		t.Errorf("grid(3,4): %d nodes", g.NumNodes())
	}
	// Grid edges: horizontal 3*3=9, vertical 2*4=8, each bidirectional.
	if g.NumEdges() != 2*(9+8) {
		t.Errorf("grid(3,4): %d edges, want %d", g.NumEdges(), 2*(9+8))
	}
	if !g.StronglyConnectedHosts() {
		t.Errorf("grid should be strongly connected")
	}
}

func TestTopologyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"line too small": func() { Line(1, 1) },
		"ring too small": func() { Ring(2, 1) },
		"star too small": func() { Star(1, 1) },
		"grid too small": func() { Grid(1, 1, 1) },
		"fattree odd":    func() { FatTree(3, 1) },
		"fattree small":  func() { FatTree(0, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestFatTreeStructure(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		g := FatTree(k, 1)
		wantHosts := NumFatTreeHosts(k)
		if got := len(g.Hosts()); got != wantHosts {
			t.Errorf("FatTree(%d): %d hosts, want %d", k, got, wantHosts)
		}
		// Switches: k^2/4 core + k*k/2 agg + k*k/2 edge.
		wantNodes := wantHosts + k*k/4 + k*k
		if g.NumNodes() != wantNodes {
			t.Errorf("FatTree(%d): %d nodes, want %d", k, g.NumNodes(), wantNodes)
		}
		// Links: hosts k^3/4, edge-agg k*(k/2)^2, agg-core k*(k/2)^2; doubled
		// for direction.
		wantEdges := 2 * (wantHosts + k*(k/2)*(k/2)*2)
		if g.NumEdges() != wantEdges {
			t.Errorf("FatTree(%d): %d edges, want %d", k, g.NumEdges(), wantEdges)
		}
		if !g.StronglyConnectedHosts() {
			t.Errorf("FatTree(%d) should be strongly connected", k)
		}
	}
}

func TestFatTreePathsExist(t *testing.T) {
	g := FatTree(4, 1)
	hosts := g.Hosts()
	p := g.ShortestPath(hosts[0], hosts[len(hosts)-1])
	if p == nil {
		t.Fatal("no path across fat-tree")
	}
	// Cross-pod paths in a fat-tree have exactly 6 hops
	// (host-edge-agg-core-agg-edge-host).
	if len(p) != 6 {
		t.Errorf("cross-pod path length = %d, want 6", len(p))
	}
	// Same-rack paths have 2 hops.
	p2 := g.ShortestPath(hosts[0], hosts[1])
	if len(p2) != 2 {
		t.Errorf("same-rack path length = %d, want 2", len(p2))
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomRegular(10, 3, 1, rng)
	if len(g.Hosts()) != 10 {
		t.Errorf("hosts = %d, want 10", len(g.Hosts()))
	}
	if !g.StronglyConnectedHosts() {
		t.Errorf("random regular graph should be strongly connected")
	}
	// d >= n clamps.
	g2 := RandomRegular(3, 10, 1, rng)
	if len(g2.Hosts()) != 3 {
		t.Errorf("hosts = %d, want 3", len(g2.Hosts()))
	}
}

func TestGraphString(t *testing.T) {
	g := FatTree(2, 1)
	s := g.String()
	for _, want := range []string{"nodes", "edges", "host", "core"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if NodeKind(99).String() != "unknown" {
		t.Errorf("unexpected NodeKind string")
	}
}
