package graph

// Candidate-path memoization. Yen's k-shortest-paths search is the single
// most expensive pure function in the serving stack — every online engine
// used to recompute the same (src, dst, k) candidate sets against the same
// immutable topology. The memo lives on the Graph so every engine, policy
// and benchmark sharing a topology shares one cache; it is safe for
// concurrent readers and is invalidated wholesale if the graph mutates.

type kspKey struct {
	src, dst NodeID
	k        int
}

// KShortestPathsCached is KShortestPaths with per-graph memoization. The
// returned slice is shared: callers must treat it (and the contained paths)
// as read-only. Concurrent callers are safe; a cache miss may compute the
// same entry twice under contention, but both computations are identical so
// either result stands.
func (g *Graph) KShortestPathsCached(src, dst NodeID, k int) []Path {
	key := kspKey{src: src, dst: dst, k: k}
	g.kspMu.RLock()
	paths, ok := g.kspMemo[key]
	g.kspMu.RUnlock()
	if ok {
		return paths
	}
	paths = g.KShortestPaths(src, dst, k)
	g.kspMu.Lock()
	if g.kspMemo == nil {
		g.kspMemo = make(map[kspKey][]Path)
	}
	if prior, ok := g.kspMemo[key]; ok {
		paths = prior // keep the first insertion so callers share one slice
	} else {
		g.kspMemo[key] = paths
	}
	g.kspMu.Unlock()
	return paths
}

// invalidateCaches drops memoized derived state after a topology mutation.
func (g *Graph) invalidateCaches() {
	g.kspMu.Lock()
	g.kspMemo = nil
	g.kspMu.Unlock()
}

// btScratch is the reusable accumulation arena for BottleneckTime. Entries
// are valid only when stamped with the current generation, so acquiring the
// scratch never pays an O(edges) clear.
type btScratch struct {
	vals  []float64
	stamp []uint32
	cur   uint32
}
