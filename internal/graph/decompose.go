package graph

// WeightedPath is a path carrying an amount of flow, produced by flow
// decomposition.
type WeightedPath struct {
	Path   Path
	Amount float64
}

// decomposeTol is the smallest amount of residual flow worth extracting;
// anything below it is treated as numerical noise from the LP solution.
const decomposeTol = 1e-9

// DecomposeFlow decomposes a single-commodity edge flow (indexed by EdgeID)
// from src to dst into a set of weighted source-destination paths, using the
// "thickest path" rule: at every step the path with the largest bottleneck of
// remaining flow is extracted. Flow on cycles (which carries nothing from src
// to dst) is ignored. The returned paths carry total flow equal to the net
// flow out of src, up to numerical tolerance.
//
// This is the flow decomposition step of the paper's §2.2 rounding; the
// thickest-path rule matches the implementation described in §4.2, which
// minimizes the number of paths per flow in practice.
func (g *Graph) DecomposeFlow(src, dst NodeID, flow []float64) []WeightedPath {
	residual := make([]float64, len(flow))
	copy(residual, flow)
	var out []WeightedPath
	for {
		p := g.WidestPath(src, dst, func(e EdgeID) float64 {
			if residual[e] <= decomposeTol {
				return 0
			}
			return residual[e]
		})
		if p == nil || len(p) == 0 {
			break
		}
		amount := residual[p[0]]
		for _, e := range p[1:] {
			if residual[e] < amount {
				amount = residual[e]
			}
		}
		if amount <= decomposeTol {
			break
		}
		for _, e := range p {
			residual[e] -= amount
		}
		out = append(out, WeightedPath{Path: p, Amount: amount})
		if len(out) > g.NumEdges()+1 {
			// Each extraction zeroes at least one edge, so this cannot
			// happen for exact arithmetic; guard against FP pathologies.
			break
		}
	}
	return out
}

// TotalAmount sums the flow carried by a set of weighted paths.
func TotalAmount(paths []WeightedPath) float64 {
	s := 0.0
	for _, wp := range paths {
		s += wp.Amount
	}
	return s
}

// NetOutFlow returns the net flow leaving node v under the given per-edge
// flow vector (outgoing minus incoming).
func (g *Graph) NetOutFlow(v NodeID, flow []float64) float64 {
	s := 0.0
	for _, e := range g.Out(v) {
		s += flow[e]
	}
	for _, e := range g.In(v) {
		s -= flow[e]
	}
	return s
}

// CheckConservation verifies that the flow vector conserves flow at every
// node except src and dst, to within tol. It returns the first violating node
// and false, or (-1, true) when conservation holds.
func (g *Graph) CheckConservation(src, dst NodeID, flow []float64, tol float64) (NodeID, bool) {
	for v := 0; v < g.NumNodes(); v++ {
		id := NodeID(v)
		if id == src || id == dst {
			continue
		}
		net := g.NetOutFlow(id, flow)
		if net > tol || net < -tol {
			return id, false
		}
	}
	return -1, true
}
