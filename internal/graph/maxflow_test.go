package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxFlowSimple(t *testing.T) {
	// Classic 4-node example: s->a (3), s->b (2), a->b (1), a->t (2), b->t (3).
	// Max flow = 5.
	g := New()
	s := g.AddNode("s", KindHost)
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	d := g.AddNode("t", KindHost)
	g.AddEdge(s, a, 3)
	g.AddEdge(s, b, 2)
	g.AddEdge(a, b, 1)
	g.AddEdge(a, d, 2)
	g.AddEdge(b, d, 3)
	val, flow := g.MaxFlow(s, d)
	if math.Abs(val-5) > 1e-9 {
		t.Errorf("max flow = %v, want 5", val)
	}
	// Flow conservation and capacity feasibility.
	for i, f := range flow {
		if f < -1e-9 || f > g.Capacity(EdgeID(i))+1e-9 {
			t.Errorf("edge %d flow %v violates capacity %v", i, f, g.Capacity(EdgeID(i)))
		}
	}
	if v, ok := g.CheckConservation(s, d, flow, 1e-9); !ok {
		t.Errorf("conservation violated at node %d", v)
	}
	if out := g.NetOutFlow(s, flow); math.Abs(out-5) > 1e-9 {
		t.Errorf("net out of source = %v, want 5", out)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := New()
	s := g.AddNode("s", KindHost)
	d := g.AddNode("t", KindHost)
	val, _ := g.MaxFlow(s, d)
	if val != 0 {
		t.Errorf("max flow between disconnected nodes = %v, want 0", val)
	}
	if v, _ := g.MaxFlow(s, s); v != 0 {
		t.Errorf("max flow s->s = %v, want 0", v)
	}
}

func TestMaxFlowWithCapacitiesOverride(t *testing.T) {
	g := New()
	s := g.AddNode("s", KindHost)
	d := g.AddNode("t", KindHost)
	e := g.AddEdge(s, d, 10)
	caps := make([]float64, g.NumEdges())
	caps[e] = 4
	val, flow := g.MaxFlowWithCapacities(s, d, caps)
	if math.Abs(val-4) > 1e-9 || math.Abs(flow[e]-4) > 1e-9 {
		t.Errorf("overridden max flow = %v (edge %v), want 4", val, flow[e])
	}
	// Zero/negative capacities disable the edge.
	caps[e] = -1
	val, _ = g.MaxFlowWithCapacities(s, d, caps)
	if val != 0 {
		t.Errorf("flow over disabled edge = %v, want 0", val)
	}
}

func TestMinCutEqualsMaxFlow(t *testing.T) {
	g := New()
	s := g.AddNode("s", KindHost)
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	d := g.AddNode("t", KindHost)
	g.AddEdge(s, a, 4)
	g.AddEdge(s, b, 3)
	g.AddEdge(a, d, 2)
	g.AddEdge(b, d, 5)
	g.AddEdge(a, b, 1)
	flowVal, _ := g.MaxFlow(s, d)
	cutVal, cutEdges := g.MinCut(s, d)
	if math.Abs(flowVal-cutVal) > 1e-9 {
		t.Errorf("max flow %v != min cut %v", flowVal, cutVal)
	}
	capSum := 0.0
	for _, e := range cutEdges {
		capSum += g.Capacity(e)
	}
	if math.Abs(capSum-cutVal) > 1e-9 {
		t.Errorf("cut edges sum %v != cut value %v", capSum, cutVal)
	}
}

func TestMaxFlowFatTreeBisection(t *testing.T) {
	// In a fat-tree with unit links, a single host pair is limited by the
	// host access link: max flow = 1.
	g := FatTree(4, 1)
	h := g.Hosts()
	val, _ := g.MaxFlow(h[0], h[len(h)-1])
	if math.Abs(val-1) > 1e-9 {
		t.Errorf("fat-tree host-to-host max flow = %v, want 1", val)
	}
}

func TestPropertyMaxFlowEqualsMinCutRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		g := New()
		ids := make([]NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = g.AddNode("", KindHost)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.4 {
					g.AddEdge(ids[i], ids[j], 1+rng.Float64()*5)
				}
			}
		}
		s, d := ids[0], ids[n-1]
		flowVal, flow := g.MaxFlow(s, d)
		cutVal, _ := g.MinCut(s, d)
		if math.Abs(flowVal-cutVal) > 1e-6 {
			return false
		}
		// Feasibility.
		for i, fl := range flow {
			if fl < -1e-9 || fl > g.Capacity(EdgeID(i))+1e-6 {
				return false
			}
		}
		if _, ok := g.CheckConservation(s, d, flow, 1e-6); !ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeFlowSimple(t *testing.T) {
	g := New()
	s := g.AddNode("s", KindHost)
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	d := g.AddNode("t", KindHost)
	sa := g.AddEdge(s, a, 3)
	sb := g.AddEdge(s, b, 2)
	ad := g.AddEdge(a, d, 3)
	bd := g.AddEdge(b, d, 2)
	flow := make([]float64, g.NumEdges())
	flow[sa], flow[ad] = 3, 3
	flow[sb], flow[bd] = 2, 2
	paths := g.DecomposeFlow(s, d, flow)
	if len(paths) != 2 {
		t.Fatalf("decomposition returned %d paths, want 2", len(paths))
	}
	if math.Abs(TotalAmount(paths)-5) > 1e-9 {
		t.Errorf("total amount %v, want 5", TotalAmount(paths))
	}
	// Thickest first.
	if paths[0].Amount < paths[1].Amount {
		t.Errorf("paths not in thickest-first order: %v then %v", paths[0].Amount, paths[1].Amount)
	}
	for _, wp := range paths {
		if err := wp.Path.Validate(g, s, d); err != nil {
			t.Errorf("decomposed path invalid: %v", err)
		}
	}
}

func TestDecomposeFlowIgnoresCycles(t *testing.T) {
	// Flow with a useless cycle a->b->a on top of a direct s->t path.
	g := New()
	s := g.AddNode("s", KindHost)
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	d := g.AddNode("t", KindHost)
	sd := g.AddEdge(s, d, 5)
	ab := g.AddEdge(a, b, 5)
	ba := g.AddEdge(b, a, 5)
	flow := make([]float64, g.NumEdges())
	flow[sd] = 2
	flow[ab], flow[ba] = 1, 1
	paths := g.DecomposeFlow(s, d, flow)
	if len(paths) != 1 || math.Abs(paths[0].Amount-2) > 1e-9 {
		t.Errorf("decomposition = %+v, want single path of amount 2", paths)
	}
}

func TestDecomposeFlowEmpty(t *testing.T) {
	g := Triangle()
	flow := make([]float64, g.NumEdges())
	paths := g.DecomposeFlow(0, 1, flow)
	if len(paths) != 0 {
		t.Errorf("decomposition of zero flow = %v, want empty", paths)
	}
}

func TestPropertyDecompositionRecoversMaxFlow(t *testing.T) {
	// For random graphs, decomposing a max flow must recover its full value
	// and every path must be a valid s-t path within edge flows.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g := New()
		ids := make([]NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = g.AddNode("", KindHost)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.5 {
					g.AddEdge(ids[i], ids[j], 0.5+rng.Float64()*4)
				}
			}
		}
		s, d := ids[0], ids[n-1]
		val, flow := g.MaxFlow(s, d)
		paths := g.DecomposeFlow(s, d, flow)
		if math.Abs(TotalAmount(paths)-val) > 1e-6*(1+val) {
			return false
		}
		// Paths must respect the flow: summing path amounts per edge must not
		// exceed the edge flow.
		used := make([]float64, g.NumEdges())
		for _, wp := range paths {
			if wp.Path.Validate(g, s, d) != nil {
				return false
			}
			for _, e := range wp.Path {
				used[e] += wp.Amount
			}
		}
		for i := range used {
			if used[i] > flow[i]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
