package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"coflowsched/internal/monitor"
	"coflowsched/internal/server"
	"coflowsched/internal/workload"
)

// TestProfilingSmoke is the CI profiling smoke: a partitioned cluster under
// load loses a shard, the resulting firing transition must write a bundle
// whose on-alert evidence includes a non-empty CPU profile from a live
// target, and the live shard's exposition must serve the new stage and
// partition families through the strict parser. It is the end-to-end check
// that the on-alert profile capture path actually reaches /debug/pprof.
func TestProfilingSmoke(t *testing.T) {
	bundleDir := t.TempDir()
	l, err := NewLocal(LocalConfig{
		Shards:     2,
		TimeScale:  200,
		Partitions: 4,
		Gateway: Config{
			HealthInterval: 100 * time.Millisecond,
		},
		Monitor: &monitor.Config{
			Interval:  100 * time.Millisecond,
			BundleDir: bundleDir,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("new local cluster: %v", err)
	}
	t.Cleanup(l.Close)

	// Put the cluster under load so the captured CPU profile samples real
	// scheduler work, then kill a shard mid-flight.
	sc, ok := workload.LookupScenario("uniform")
	if !ok {
		t.Fatal("uniform scenario not registered")
	}
	inst, arrivals, err := sc.Build()
	if err != nil {
		t.Fatalf("build scenario: %v", err)
	}
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		// Failures are expected: the kill races in-flight admissions.
		_, _ = server.RunLoad(l.Client(), server.LoadConfig{
			Instance: inst, Arrivals: arrivals, SpeedUp: 50, Concurrency: 4,
		})
	}()
	time.Sleep(300 * time.Millisecond)
	l.Kill(1)
	<-loadDone

	// Wait for a firing transition to write its bundle (the capture blocks
	// on the CPU profile's sampling window before the file lands).
	deadline := time.Now().Add(30 * time.Second)
	var entries []os.DirEntry
	for {
		entries, err = os.ReadDir(bundleDir)
		if err == nil && len(entries) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no bundle written: %v %v", entries, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	data, err := os.ReadFile(filepath.Join(bundleDir, entries[0].Name()))
	if err != nil {
		t.Fatalf("read bundle: %v", err)
	}
	var b monitor.Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if len(b.Profiles) == 0 {
		t.Fatal("bundle carries no profile captures")
	}
	cpuBytes := 0
	for name, pc := range b.Profiles {
		if pc.Err != "" {
			t.Logf("profile capture for %s partial: %s", name, pc.Err)
		}
		cpuBytes += len(pc.CPU)
		// A CPU profile is a gzipped proto; check the magic rather than
		// just non-emptiness so a captured error page can't pass.
		if len(pc.CPU) >= 2 && (pc.CPU[0] != 0x1f || pc.CPU[1] != 0x8b) {
			t.Errorf("CPU profile for %s is not gzip (starts %x)", name, pc.CPU[:2])
		}
	}
	if cpuBytes == 0 {
		t.Fatalf("every profile capture has an empty CPU profile: %+v", keys(b.Profiles))
	}

	// The live shard's /metrics must expose the stage and partition families
	// through the strict parser (getMetrics fails the test on a parse error).
	sm := getMetrics(t, l.ShardURL(0))
	for _, name := range []string{
		"coflowd_admit_stage_seconds_count",
		"coflowd_partition_realloc_seconds_count",
		"coflowd_partition_dirty_suffix_count",
		"coflowd_partition_imbalance_ratio",
		"coflowd_partition_cross_flows_total",
		"coflowd_partition_parallel_rounds_total",
	} {
		if _, ok := firstSample(sm, name); !ok {
			t.Errorf("live shard metrics missing %s", name)
		}
	}
	// The load must have produced allocator work: every reallocation pass
	// observes its dirty-suffix depth regardless of whether the suffix was
	// long enough for the parallel fan-out to engage.
	total := 0.0
	for _, s := range sm.Samples {
		if s.Name == "coflowd_partition_dirty_suffix_count" {
			total += s.Value
		}
	}
	if total == 0 {
		t.Error("dirty-suffix histogram has no observations after a load")
	}
}

func keys(m map[string]monitor.ProfileCapture) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
