package cluster

import (
	"fmt"
	"hash/fnv"

	"coflowsched/internal/coflow"
)

// Placement decides which shard a coflow lands on. Place receives the
// gateway-assigned coflow id, the coflow itself, and the currently healthy
// candidate backends (never empty); it must return one of them. The gateway
// serializes Place calls, so implementations need no locking of their own.
type Placement interface {
	Name() string
	Place(id int, cf coflow.Coflow, healthy []*Backend) *Backend
}

// ConsistentHash places by highest-random-weight (rendezvous) hashing of the
// gateway coflow id against each backend's name: deterministic — the same id
// always maps to the same backend while that backend is healthy — and stable
// under membership change, since removing one backend only moves the coflows
// that lived on it. Rendezvous hashing is the ring-free form of consistent
// hashing: every (key, backend) pair gets a pseudo-random score and the key
// goes to the top scorer.
type ConsistentHash struct{}

// Name implements Placement.
func (ConsistentHash) Name() string { return "hash" }

// Place implements Placement.
func (ConsistentHash) Place(id int, _ coflow.Coflow, healthy []*Backend) *Backend {
	var best *Backend
	var bestScore uint64
	for _, b := range healthy {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s/%d", b.name, id)
		score := mix64(h.Sum64())
		if best == nil || score > bestScore || (score == bestScore && b.name < best.name) {
			best, bestScore = b, score
		}
	}
	return best
}

// mix64 is the splitmix64 finalizer. Raw FNV-1a scores of keys that differ
// only in a short prefix (the backend names) are strongly ordered, which
// would let one backend win almost every rendezvous; the finalizer diffuses
// every input bit across the output.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// LeastLoad places on the backend with the fewest outstanding coflows
// (placed but not yet observed complete), tie-broken by name for
// determinism. It balances by construction but is not sticky: the same
// coflow id can land differently depending on cluster state.
type LeastLoad struct{}

// Name implements Placement.
func (LeastLoad) Name() string { return "least-load" }

// Place implements Placement.
func (LeastLoad) Place(_ int, _ coflow.Coflow, healthy []*Backend) *Backend {
	var best *Backend
	for _, b := range healthy {
		if best == nil || b.outstanding < best.outstanding ||
			(b.outstanding == best.outstanding && b.name < best.name) {
			best = b
		}
	}
	return best
}

// ParsePlacement resolves a placement by its CLI name.
func ParsePlacement(name string) (Placement, error) {
	switch name {
	case "hash":
		return ConsistentHash{}, nil
	case "least-load":
		return LeastLoad{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown placement %q (want hash, least-load)", name)
}
