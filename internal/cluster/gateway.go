// Package cluster turns N independent coflowd daemons into one horizontally
// sharded scheduling service. Each backend owns a complete fabric of its own
// (the paper's schedulers are analyzed per-fabric, so a shard is the natural
// scaling unit); the gateway is the front door that places every admitted
// coflow on exactly one shard and answers the same /v1/* JSON API as a single
// coflowd by fanning out: Admit routes to one shard through a batching queue,
// Stats and Schedule scatter-gather and merge, per-coflow status follows the
// coflow to whichever shard currently owns it.
//
// Fault model: backends are health-checked continuously. A backend that fails
// consecutive probes (or admissions) is ejected; its in-flight coflows are
// re-admitted on the surviving shards (restarting from zero — shards share no
// state), and the ejected backend is re-probed with exponentially backed-off
// intervals until it answers again, at which point it rejoins the placement
// rotation.
//
// Concurrency model: one mutex guards the routing table (gateway id ->
// backend + backend-local id) and backend health state. All network I/O —
// admissions, probes, scatter-gathers — happens outside the lock against
// snapshots, so a slow shard never wedges the gateway.
package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/durable"
	"coflowsched/internal/online"
	"coflowsched/internal/server"
	"coflowsched/internal/telemetry"
)

// Config parameterizes the gateway.
type Config struct {
	// Placement picks a shard per coflow (default ConsistentHash).
	Placement Placement
	// HealthInterval is the probe period for healthy backends and the first
	// re-probe backoff for ejected ones (default 1s).
	HealthInterval time.Duration
	// FailThreshold is the number of consecutive probe/admission failures
	// that ejects a healthy backend (default 2).
	FailThreshold int
	// BackoffMax caps the exponential re-probe backoff (default 30s).
	BackoffMax time.Duration
	// BatchSize flushes the admit queue when this many admissions are
	// pending (default 16); BatchInterval flushes whatever has gathered after
	// this long regardless (default 5ms). A flush admits its whole batch to
	// the shards concurrently.
	BatchSize     int
	BatchInterval time.Duration
	// ClientTimeout, ClientRetries and ClientRetryBase configure the
	// per-backend HTTP clients (defaults: 5s, 2 retries, 50ms base backoff).
	// Set ClientRetries to -1 to disable retrying entirely (exactly-once
	// shard admission at the cost of availability; see the at-least-once
	// caveat on server.Client).
	ClientTimeout   time.Duration
	ClientRetries   int
	ClientRetryBase time.Duration
	// Logger receives structured operational logs (ejections, recoveries,
	// re-admissions) with a component=coflowgate field attached. When nil,
	// Logf is bridged through a line-formatting handler; when that is nil
	// too, logs are discarded.
	Logger *slog.Logger
	// Logf is the legacy printf-style sink, still honored for compatibility
	// (tests pass t.Logf here). Ignored when Logger is set.
	Logf func(format string, args ...any)
	// TraceCapacity bounds the gateway's lifecycle-trace span ring served at
	// /debug/traces (default telemetry.DefaultTraceCapacity).
	TraceCapacity int
	// StateDir, when non-empty, turns on gateway durability: id assignments,
	// placements and observed completions are written to a write-ahead log
	// under this directory and a restarted gateway recovers its translation
	// and placement tables from it before serving. See durable.go.
	StateDir string
	// SnapshotInterval is the period between gateway state snapshots, which
	// bound replay time and let the log prefix be truncated. Only meaningful
	// with StateDir; defaults to 30s there, negative disables snapshotting.
	SnapshotInterval time.Duration
	// SnapshotStore overrides where gateway snapshots are written. Nil
	// defaults to a local directory store under StateDir/snapshots.
	SnapshotStore durable.BlobStore
	// ShardRecovery, when true, declares the backends durable (each coflowd
	// runs with its own -wal-dir): an ejected backend keeps its placement
	// bindings instead of having its coflows re-admitted elsewhere, because
	// the restarted shard will recover them itself. Status calls against a
	// down shard fail transiently until it returns.
	ShardRecovery bool
}

func (c Config) withDefaults() Config {
	if c.Placement == nil {
		c.Placement = ConsistentHash{}
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 30 * time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.BatchInterval <= 0 {
		c.BatchInterval = 5 * time.Millisecond
	}
	if c.ClientTimeout <= 0 {
		c.ClientTimeout = 5 * time.Second
	}
	if c.ClientRetries < 0 {
		c.ClientRetries = 0
	} else if c.ClientRetries == 0 {
		c.ClientRetries = 2
	}
	if c.ClientRetryBase <= 0 {
		c.ClientRetryBase = 50 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = telemetry.LogfLogger(c.Logf) // nil Logf discards
	}
	if c.StateDir != "" && c.SnapshotInterval == 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	return c
}

// errClosed is returned for operations after Close.
var errClosed = errors.New("cluster: gateway closed")

// errNoBackend rejects admissions when no healthy shard remains.
var errNoBackend = errors.New("cluster: no healthy backend available")

// errNoFlows rejects structurally empty coflows at the gateway, before any
// shard is bothered.
var errNoFlows = errors.New("cluster: coflow has no flows")

// errDurable rejects admissions the gateway cannot make durable: the WAL is
// failing, and acknowledging an id that would not survive a restart breaks
// the recovery contract.
var errDurable = errors.New("cluster: durability failure")

// Backend is one coflowd shard as the gateway sees it. All mutable fields
// are guarded by the gateway mutex; the client is immutable and used outside
// the lock.
type Backend struct {
	name   string
	url    string
	client *server.Client
	// probe is a non-retrying client for health checks: a failed probe is
	// itself the signal the health loop collects, and client-level retries
	// would multiply a hung backend's detection latency by the retry budget.
	probe *server.Client

	healthy   bool
	failures  int           // consecutive probe/admit failures while healthy
	backoff   time.Duration // current re-probe backoff while unhealthy
	nextProbe time.Time     // earliest next probe while unhealthy
	ejections int

	// outstanding counts coflows placed here and not yet observed complete;
	// local maps this backend's coflow ids back to gateway ids.
	outstanding int
	local       map[int]int
}

// BackendStatus is the exported snapshot of one backend (GET /v1/backends).
type BackendStatus struct {
	Name        string `json:"name"`
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	Outstanding int    `json:"outstanding"`
	Ejections   int    `json:"ejections"`
}

// routed tracks one gateway-admitted coflow through its life: queued ->
// placed on a shard -> (possibly re-admitted elsewhere after a failure) ->
// observed complete. The spec is retained until completion so a dead shard's
// in-flight coflows can be replayed on a survivor.
type routed struct {
	spec     coflow.Coflow
	backend  *Backend // nil while queued or orphaned by an ejection
	localID  int
	arrival  float64 // shard-local admission clock, echoed to the client
	trace    string  // lifecycle trace id, propagated to the owning shard
	admitted bool
	failed   bool // admission failed terminally (validation, or initial 503)
	// pendingBackend names the shard a WAL-recovered placement points at; the
	// binding is re-established when that backend is registered (AddBackend).
	pendingBackend string
	// orphaned marks an acknowledged coflow detached by an ejection and not
	// yet re-placed; if no backend is healthy at failover time it stays set,
	// and the next backend recovery re-places it (applyProbe).
	orphaned bool
	done     bool
	final    server.CoflowResponse // cached once done
	readmits int
}

type admitItem struct {
	gid      int
	enqueued time.Time
	done     chan error
}

// Gateway is the cluster front door.
type Gateway struct {
	cfg     Config
	start   time.Time
	metrics *gateMetrics
	tracer  *telemetry.Tracer
	logger  *slog.Logger

	mu        sync.Mutex
	backends  []*Backend
	coflows   []*routed
	completed int // coflows observed done through the gateway
	readmits  int // re-admissions performed after ejections

	queue     chan admitItem
	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	sweeping atomic.Bool

	// Durability (nil/zero without Config.StateDir). instance is always
	// minted: it scopes the idempotency keys the gateway sends shards, so two
	// gateway incarnations never collide on a key. walFailed is guarded by mu.
	wal       *durable.Log
	store     durable.BlobStore
	walOnce   sync.Once
	instance  string
	recovered int
	walFailed bool

	snapshotting atomic.Bool
}

// New builds and starts a gateway: the admit batcher and the health prober
// begin immediately. Callers must Close it. Backends are added with
// AddBackend. With Config.StateDir, the gateway first recovers its id and
// placement tables from the directory's snapshot + WAL; an untrustworthy log
// fails the boot.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:     cfg,
		start:   time.Now(),
		metrics: newGateMetrics(),
		tracer:  telemetry.NewTracer("coflowgate", "", cfg.TraceCapacity),
		logger:  cfg.Logger.With("component", "coflowgate"),
		queue:   make(chan admitItem),
		quit:    make(chan struct{}),
	}
	if cfg.StateDir != "" {
		if err := g.recoverGateway(); err != nil {
			return nil, err
		}
	} else {
		g.instance = telemetry.NewTraceID()
	}
	g.wg.Add(2)
	go g.batcher()
	go g.healthLoop()
	return g, nil
}

// Tracer exposes the gateway's lifecycle-span ring (tests join it against the
// shards').
func (g *Gateway) Tracer() *telemetry.Tracer { return g.tracer }

// Close stops the gateway's goroutines and fsync-closes the WAL. In-flight
// admissions fail with a closed error. Safe to call more than once.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() { close(g.quit) })
	g.wg.Wait()
	if g.wal != nil {
		g.walOnce.Do(func() {
			if err := g.wal.Close(); err != nil {
				g.logger.Error("wal close failed", "err", err)
			}
		})
	}
}

// Kill stops the gateway the way a crash would: no final fsync. Everything
// not yet group-committed is abandoned to the page cache. Tests use it to
// exercise the recovery path; production shutdown is Close.
func (g *Gateway) Kill() {
	g.closeOnce.Do(func() { close(g.quit) })
	g.wg.Wait()
	if g.wal != nil {
		g.walOnce.Do(g.wal.Abandon)
	}
}

// newBackendClient builds the hardened client the gateway talks to one shard
// with.
func (g *Gateway) newBackendClient(url string) *server.Client {
	return server.NewClient(url,
		server.WithTimeout(g.cfg.ClientTimeout),
		server.WithRetries(g.cfg.ClientRetries, g.cfg.ClientRetryBase),
		server.WithInstrumentation(g.metrics.clientRetries, g.logger))
}

// AddBackend registers a shard under a unique name. It enters the placement
// rotation immediately and optimistically healthy; the prober corrects that
// within one interval if it is not.
func (g *Gateway) AddBackend(name, url string) error {
	if name == "" {
		return errors.New("cluster: backend needs a name")
	}
	b := &Backend{
		name:   name,
		url:    url,
		client: g.newBackendClient(url),
		probe: server.NewClient(url,
			server.WithTimeout(g.cfg.ClientTimeout),
			server.WithRetries(0, 0)),
		healthy: true,
		local:   make(map[int]int),
	}
	g.mu.Lock()
	for _, have := range g.backends {
		if have.name == name {
			g.mu.Unlock()
			return fmt.Errorf("cluster: backend %q already registered", name)
		}
	}
	g.backends = append(g.backends, b)
	// Re-attach WAL-recovered placements that name this shard. With durable
	// backends (ShardRecovery) the shard recovers the coflows itself, so the
	// old local ids stay valid and the binding is simply restored; with
	// stateless backends the coflows restart from zero — they are detached
	// for re-admission like any other orphan.
	relinked := 0
	for gid, rc := range g.coflows {
		if rc.pendingBackend != name || rc.done || rc.failed {
			continue
		}
		rc.pendingBackend = ""
		if g.cfg.ShardRecovery {
			rc.backend = b
			rc.admitted = true
			rc.orphaned = false
			b.local[rc.localID] = gid
			b.outstanding++
			relinked++
		} else {
			rc.orphaned = true
		}
	}
	// A fresh backend is also the retry trigger for anything already orphaned
	// (recovered-but-unplaced coflows, or strandings from a total outage).
	stranded := g.orphansLocked()
	g.mu.Unlock()
	if relinked > 0 {
		g.logger.Info("re-linked recovered placements", "backend", name, "coflows", relinked)
	}
	if len(stranded) > 0 {
		go g.readmitOrphans(stranded)
	}
	return nil
}

// RemoveBackend ejects a shard permanently; its in-flight coflows are
// re-admitted on the survivors.
func (g *Gateway) RemoveBackend(name string) error {
	g.mu.Lock()
	var orphans []int
	idx := -1
	for i, b := range g.backends {
		if b.name == name {
			idx = i
			orphans = g.ejectLocked(b)
			break
		}
	}
	if idx < 0 {
		g.mu.Unlock()
		return fmt.Errorf("cluster: unknown backend %q", name)
	}
	g.backends = append(g.backends[:idx], g.backends[idx+1:]...)
	g.mu.Unlock()
	g.readmitOrphans(orphans)
	return nil
}

// Backends snapshots the roster.
func (g *Gateway) Backends() []BackendStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]BackendStatus, len(g.backends))
	for i, b := range g.backends {
		out[i] = BackendStatus{
			Name: b.name, URL: b.url, Healthy: b.healthy,
			Outstanding: b.outstanding, Ejections: b.ejections,
		}
	}
	return out
}

// healthyLocked returns the healthy backends not in skip. Caller holds mu.
func (g *Gateway) healthyLocked(skip map[*Backend]bool) []*Backend {
	var out []*Backend
	for _, b := range g.backends {
		if b.healthy && !skip[b] {
			out = append(out, b)
		}
	}
	return out
}

// Admit assigns a gateway id, queues the coflow for batched placement, and
// waits for the shard admission to finish. Flow Release fields are offsets
// from admission, exactly as coflowd defines them; the returned arrival is on
// the owning shard's clock.
func (g *Gateway) Admit(cf coflow.Coflow) (server.AdmitResponse, error) {
	return g.AdmitTraced(cf, "")
}

// AdmitTraced is Admit under a caller-supplied lifecycle trace id (empty
// mints a fresh one). The id is propagated to the owning shard with every
// placement attempt, so the gateway's admit/batch-flush/placement spans and
// the shard's shard-admit/completion spans join at /debug/traces.
func (g *Gateway) AdmitTraced(cf coflow.Coflow, trace string) (server.AdmitResponse, error) {
	if len(cf.Flows) == 0 {
		return server.AdmitResponse{}, errNoFlows
	}
	if trace == "" {
		trace = telemetry.NewTraceID()
	}
	t0 := time.Now()
	g.mu.Lock()
	gid := len(g.coflows)
	rc := &routed{spec: cf, trace: trace}
	g.coflows = append(g.coflows, rc)
	var seq uint64
	var walErr error
	if g.wal != nil {
		// Appended while mu is held so record order matches gid order; the
		// fsync wait happens after unlock and shares the group commit.
		seq, walErr = g.walAppendLocked(&durable.Record{Type: durable.RecGatewayAdmit,
			GatewayAdmit: &durable.GatewayAdmitRecord{GID: gid, Trace: trace, Spec: cf}})
	}
	g.mu.Unlock()
	if walErr == nil && seq > 0 {
		walErr = g.wal.Commit(seq)
	}
	if walErr != nil {
		g.mu.Lock()
		rc.failed = true
		g.mu.Unlock()
		return server.AdmitResponse{}, fmt.Errorf("%w: %v", errDurable, walErr)
	}

	item := admitItem{gid: gid, enqueued: t0, done: make(chan error, 1)}
	select {
	case g.queue <- item:
	case <-g.quit:
		return server.AdmitResponse{}, errClosed
	}
	select {
	case err := <-item.done:
		if err != nil {
			return server.AdmitResponse{}, err
		}
	case <-g.quit:
		return server.AdmitResponse{}, errClosed
	}
	g.mu.Lock()
	resp := server.AdmitResponse{ID: gid, Name: cf.Name, Arrival: rc.arrival, Trace: trace}
	g.mu.Unlock()
	dur := time.Since(t0)
	g.metrics.admitSeconds.Observe(dur.Seconds())
	g.tracer.Record(telemetry.Span{
		Name: "admit", Trace: trace, Coflow: gid, Duration: dur.Seconds(),
		Attrs: map[string]string{"flows": strconv.Itoa(len(cf.Flows))},
	})
	g.logger.Debug("coflow admitted", "coflow", gid, "name", cf.Name,
		"flows", len(cf.Flows), "trace", trace, "latency", dur)
	return resp, nil
}

// batcher drains the admit queue in batches: a batch flushes when it reaches
// BatchSize or when BatchInterval elapses after its first entry, whichever
// comes first. Each flush admits its items to the shards concurrently and
// asynchronously — the batcher goes straight back to accepting, so one slow
// shard admission delays its own caller but never stalls the queue.
func (g *Gateway) batcher() {
	defer g.wg.Done()
	var batch []admitItem
	timer := time.NewTimer(g.cfg.BatchInterval)
	if !timer.Stop() {
		<-timer.C
	}
	flush := func() {
		items := batch
		batch = nil
		size := strconv.Itoa(len(items))
		for _, it := range items {
			// The batch-flush span is each item's queue wait: how long batching
			// held the admission before placement began.
			g.mu.Lock()
			trace := g.coflows[it.gid].trace
			g.mu.Unlock()
			g.tracer.Record(telemetry.Span{
				Name: "batch-flush", Trace: trace, Coflow: it.gid,
				Duration: time.Since(it.enqueued).Seconds(),
				Attrs:    map[string]string{"batch_size": size},
			})
			go func(it admitItem) {
				it.done <- g.place(it.gid, true)
			}(it)
		}
	}
	for {
		select {
		case it := <-g.queue:
			if len(batch) == 0 {
				timer.Reset(g.cfg.BatchInterval)
			}
			batch = append(batch, it)
			if len(batch) >= g.cfg.BatchSize {
				flush()
			}
		case <-timer.C:
			flush()
		case <-g.quit:
			for _, it := range batch {
				it.done <- errClosed
			}
			return
		}
	}
}

// place routes one gateway coflow onto a shard and admits it, falling back
// to the next placement candidate when a backend fails (availability errors
// only — a validation rejection is terminal, the coflow is malformed
// everywhere). initial distinguishes first placement (a failure is returned
// to the waiting HTTP caller and is terminal for this gateway id) from
// post-ejection re-admission of a coflow the gateway already acknowledged
// with 201 — there a transient "no healthy backend" leaves the coflow
// pending, to be re-placed when a backend recovers (see applyProbe).
func (g *Gateway) place(gid int, initial bool) error {
	tried := make(map[*Backend]bool)
	for {
		g.mu.Lock()
		rc := g.coflows[gid]
		if rc.done || rc.admitted {
			g.mu.Unlock()
			return nil // re-placed concurrently (e.g. failover raced a retry)
		}
		cands := g.healthyLocked(tried)
		if len(cands) == 0 {
			if initial {
				rc.failed = true // the caller sees the 503; the id is dead
			}
			g.mu.Unlock()
			return errNoBackend
		}
		b := g.cfg.Placement.Place(gid, rc.spec, cands)
		// Reserve the slot before the HTTP round trip so a concurrent flush
		// sees this backend's load: without the reservation, least-load
		// would route a whole batch to one shard (every placement reading
		// the same pre-admission counts).
		b.outstanding++
		spec, trace := rc.spec, rc.trace
		g.mu.Unlock()

		unreserve := func() {
			g.mu.Lock()
			if b.healthy && b.outstanding > 0 { // ejection already reset the count
				b.outstanding--
			}
			g.mu.Unlock()
		}
		t0 := time.Now()
		// The idempotency key is stable per gateway id (scoped by the instance
		// nonce): a retried or replayed placement on a shard that already
		// admitted this coflow gets the original admission back instead of a
		// duplicate.
		resp, err := b.client.AdmitWithKey(spec, trace, g.placementKey(gid))
		span := telemetry.Span{
			Name: "placement", Trace: trace, Coflow: gid,
			Duration: time.Since(t0).Seconds(),
			Attrs:    map[string]string{"backend": b.name},
		}
		if err != nil {
			span.Attrs["error"] = err.Error()
		}
		g.tracer.Record(span)
		if err != nil {
			unreserve()
			var apiErr *server.APIError
			if errors.As(err, &apiErr) && terminalStatus(apiErr.StatusCode) {
				g.mu.Lock()
				rc.failed = true
				g.mu.Unlock()
				return err // the shard rejected the coflow itself; do not spread it
			}
			tried[b] = true
			g.noteBackendFailure(b, err)
			continue
		}
		g.mu.Lock()
		if rc.admitted || rc.done {
			// Someone else placed this coflow while our admission was in
			// flight (a recovery re-placement racing the batcher). Keep the
			// earlier booking; our copy on b is an orphan.
			if b.healthy && b.outstanding > 0 {
				b.outstanding--
			}
			g.mu.Unlock()
			return nil
		}
		if !b.healthy {
			// The backend was ejected while our admission was in flight; its
			// orphans were already detached and this coflow was not among
			// them. Recording it here would strand it on a dead shard, so
			// treat the admission as failed and place elsewhere. (The shard
			// may hold an orphan copy — the same at-least-once trade a
			// lost-response retry makes.)
			g.mu.Unlock()
			tried[b] = true
			continue
		}
		rc.backend = b
		rc.localID = resp.ID
		rc.arrival = resp.Arrival
		rc.admitted = true
		rc.orphaned = false
		b.local[resp.ID] = gid
		var seq uint64
		var walErr error
		if g.wal != nil {
			seq, walErr = g.walAppendLocked(&durable.Record{Type: durable.RecGatewayPlace,
				GatewayPlace: &durable.GatewayPlaceRecord{GID: gid, Backend: b.name, LocalID: resp.ID, Arrival: resp.Arrival}})
		}
		g.mu.Unlock()
		if walErr == nil && seq > 0 {
			// A lost placement record is recoverable (the coflow re-places
			// under the same idempotency key), but committing here keeps the
			// table durable before the client's 201 goes out.
			walErr = g.wal.Commit(seq)
		}
		if walErr != nil && initial {
			return fmt.Errorf("%w: %v", errDurable, walErr)
		}
		return nil
	}
}

// placementKey is the idempotency key the gateway admits gid to a shard
// under: stable across retries and gateway restarts of one instance,
// distinct across instances.
func (g *Gateway) placementKey(gid int) string {
	return g.instance + "-" + strconv.Itoa(gid)
}

// terminalStatus reports whether a shard response code means the request
// itself is bad and re-routing to another shard cannot help: the 4xx
// validation band, minus the transient members (429 overload, 408 timeout)
// the retrying client already classifies as availability failures.
func terminalStatus(code int) bool {
	if code == http.StatusTooManyRequests || code == http.StatusRequestTimeout {
		return false
	}
	return code >= 400 && code < 500
}

// noteBackendFailure records an availability failure against a healthy
// backend and ejects it once the threshold is crossed, re-admitting its
// in-flight coflows elsewhere.
func (g *Gateway) noteBackendFailure(b *Backend, cause error) {
	g.mu.Lock()
	if !b.healthy {
		g.mu.Unlock()
		return
	}
	b.failures++
	if b.failures < g.cfg.FailThreshold {
		g.mu.Unlock()
		return
	}
	orphans := g.ejectLocked(b)
	g.mu.Unlock()
	g.logger.Warn("backend ejected", "backend", b.name, "cause", cause, "orphans", len(orphans))
	go g.readmitOrphans(orphans)
}

// ejectLocked marks a backend unhealthy, arms its re-probe backoff and
// detaches its in-flight coflows, returning their gateway ids for
// re-admission. Caller holds mu and must call readmitOrphans after unlocking.
func (g *Gateway) ejectLocked(b *Backend) []int {
	if !b.healthy {
		return nil
	}
	b.healthy = false
	b.failures = 0
	b.backoff = g.cfg.HealthInterval
	b.nextProbe = time.Now().Add(b.backoff)
	b.ejections++
	if g.cfg.ShardRecovery {
		// Durable backends recover their own coflows on restart, so the
		// placement bindings stay put; detaching them here would re-admit
		// coflows the shard is about to resurrect.
		return nil
	}
	var orphans []int
	for _, gid := range b.local {
		rc := g.coflows[gid]
		if rc.done || rc.backend != b {
			continue
		}
		rc.backend = nil
		rc.admitted = false
		rc.orphaned = true
		rc.readmits++
		orphans = append(orphans, gid)
	}
	b.local = make(map[int]int)
	b.outstanding = 0
	sort.Ints(orphans)
	return orphans
}

// readmitOrphans replays detached coflows onto the surviving shards. A
// coflow restarts from zero on its new shard — shards share no state, the
// same trade a real stateless-scheduler failover makes. A coflow that
// cannot be placed right now (no healthy backend) stays orphaned and is
// retried when a backend recovers.
func (g *Gateway) readmitOrphans(orphans []int) {
	for _, gid := range orphans {
		if err := g.place(gid, false); err != nil {
			g.logger.Warn("re-admission failed, will retry on recovery", "coflow", gid, "err", err)
			continue
		}
		g.mu.Lock()
		g.readmits++
		trace := g.coflows[gid].trace
		g.mu.Unlock()
		g.logger.Info("coflow re-admitted after ejection", "coflow", gid, "trace", trace)
	}
}

// orphansLocked returns acknowledged coflows currently on no shard. Caller
// holds mu.
func (g *Gateway) orphansLocked() []int {
	var out []int
	for gid, rc := range g.coflows {
		if rc.orphaned && !rc.admitted && !rc.done && !rc.failed {
			out = append(out, gid)
		}
	}
	return out
}

// healthLoop probes backends every HealthInterval: healthy ones on every
// tick, ejected ones once their backoff expires (doubling up to BackoffMax
// on each further failure). A recovered backend rejoins the rotation with a
// clean slate.
func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	lastSnap := time.Now()
	for {
		select {
		case <-g.quit:
			return
		case <-t.C:
			g.probeAll()
			if g.wal != nil && g.cfg.SnapshotInterval > 0 && time.Since(lastSnap) >= g.cfg.SnapshotInterval {
				lastSnap = time.Now()
				g.maybeSnapshotGateway()
			}
			// The sweep does per-coflow HTTP and can be slow against a
			// wedged shard; it must never hold up the next probe tick, so
			// it runs detached with at most one sweep in flight.
			if g.sweeping.CompareAndSwap(false, true) {
				go func() {
					defer g.sweeping.Store(false)
					g.sweepCompletions()
				}()
			}
		}
	}
}

// sweepBatch bounds how many of a backend's outstanding coflows the
// completion sweep polls per health tick.
const sweepBatch = 32

// sweepCompletions polls a bounded, rotating subset of each healthy
// backend's outstanding coflows. Status folds observed completions into the
// gateway bookkeeping — completed counters, least-load outstanding counts,
// and the retained failover specs — so state converges even when no client
// ever polls /v1/coflows/{id} (a fire-and-forget producer). Map iteration
// order varies per tick, so every outstanding coflow is eventually visited.
func (g *Gateway) sweepCompletions() {
	g.mu.Lock()
	var gids []int
	for _, b := range g.backends {
		// Skip backends that are down or whose probes are currently failing:
		// sweeping them would burn a client timeout per coflow for nothing.
		if !b.healthy || b.failures > 0 {
			continue
		}
		n := 0
		for _, gid := range b.local {
			if n >= sweepBatch {
				break
			}
			gids = append(gids, gid)
			n++
		}
	}
	g.mu.Unlock()
	for _, gid := range gids {
		select {
		case <-g.quit:
			return
		default:
		}
		_, _, _ = g.Status(gid)
	}
}

func (g *Gateway) probeAll() {
	g.mu.Lock()
	now := time.Now()
	var due []*Backend
	for _, b := range g.backends {
		if b.healthy || !now.Before(b.nextProbe) {
			due = append(due, b)
		}
	}
	g.mu.Unlock()
	var wg sync.WaitGroup
	for _, b := range due {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			_, err := b.probe.Health()
			g.applyProbe(b, err)
		}(b)
	}
	wg.Wait()
}

// applyProbe folds one probe result into the backend's health state.
func (g *Gateway) applyProbe(b *Backend, probeErr error) {
	if probeErr == nil {
		g.mu.Lock()
		wasDown := !b.healthy
		b.healthy = true
		b.failures = 0
		b.backoff = 0
		var stranded []int
		if wasDown {
			// Recovery is the retry trigger for coflows orphaned while no
			// backend was healthy.
			stranded = g.orphansLocked()
		}
		g.mu.Unlock()
		if wasDown {
			g.logger.Info("backend healthy again, re-admitted to rotation", "backend", b.name)
			if len(stranded) > 0 {
				// Detached: re-admission is retrying HTTP and must not hold
				// up the probe round (probeAll waits on its probes).
				go g.readmitOrphans(stranded)
			}
		}
		return
	}
	g.mu.Lock()
	if b.healthy {
		b.failures++
		if b.failures < g.cfg.FailThreshold {
			g.mu.Unlock()
			return
		}
		orphans := g.ejectLocked(b)
		g.mu.Unlock()
		g.logger.Warn("backend ejected", "backend", b.name, "cause", probeErr, "orphans", len(orphans))
		go g.readmitOrphans(orphans)
		return
	}
	// Still down: back off exponentially before the next probe.
	b.backoff *= 2
	if b.backoff > g.cfg.BackoffMax {
		b.backoff = g.cfg.BackoffMax
	}
	if b.backoff <= 0 {
		b.backoff = g.cfg.HealthInterval
	}
	b.nextProbe = time.Now().Add(b.backoff)
	g.mu.Unlock()
}

// Status reports one gateway coflow. found=false means the id is unknown (or
// its admission terminally failed); a non-nil error with found=true means the
// owning shard could not be reached right now (callers should retry).
func (g *Gateway) Status(gid int) (server.CoflowResponse, bool, error) {
	g.mu.Lock()
	if gid < 0 || gid >= len(g.coflows) {
		g.mu.Unlock()
		return server.CoflowResponse{}, false, nil
	}
	rc := g.coflows[gid]
	switch {
	case rc.done:
		resp := rc.final
		g.mu.Unlock()
		return resp, true, nil
	case rc.failed:
		g.mu.Unlock()
		return server.CoflowResponse{}, false, nil
	case !rc.admitted:
		resp := pendingResponse(gid, rc.spec)
		g.mu.Unlock()
		return resp, true, nil
	}
	b, lid := rc.backend, rc.localID
	g.mu.Unlock()

	st, err := b.client.Coflow(lid)
	if err != nil {
		return server.CoflowResponse{}, true, err
	}
	st.ID = gid
	g.mu.Lock()
	defer g.mu.Unlock()
	if rc.backend != b || rc.localID != lid {
		// Re-admitted elsewhere while we were asking: report it in flight.
		return pendingResponse(gid, rc.spec), true, nil
	}
	if st.Done && !rc.done {
		rc.done = true
		rc.final = st
		g.completed++
		delete(b.local, lid)
		if b.outstanding > 0 {
			b.outstanding--
		}
		g.logDoneLocked(gid, st)
		// The spec's flows are no longer needed for failover; let them go.
		rc.spec = coflow.Coflow{Name: rc.spec.Name, Weight: rc.spec.Weight}
	}
	return st, true, nil
}

// pendingResponse describes a coflow the gateway owns but no shard currently
// runs (queued, or between ejection and re-admission).
func pendingResponse(gid int, spec coflow.Coflow) server.CoflowResponse {
	total := 0.0
	for _, f := range spec.Flows {
		total += f.Size
	}
	return server.CoflowResponse{
		ID:             gid,
		Name:           spec.Name,
		Weight:         spec.Weight,
		NumFlows:       len(spec.Flows),
		TotalBytes:     total,
		RemainingBytes: total,
	}
}

// ShardStat is one backend's contribution to a scatter-gather.
type ShardStat struct {
	Name    string                `json:"name"`
	Healthy bool                  `json:"healthy"`
	Err     string                `json:"error,omitempty"`
	Stats   *server.StatsResponse `json:"stats,omitempty"`
}

// MergedStats scatter-gathers /v1/stats (with raw reservoirs) from every
// healthy backend and merges objectives, counters and percentile reservoirs
// into one EngineStats via online.MergeEngineStats. Unreachable shards are
// reported in the per-shard slice and excluded from the merge.
func (g *Gateway) MergedStats() (online.EngineStats, []ShardStat) {
	g.mu.Lock()
	backends := append([]*Backend(nil), g.backends...)
	g.mu.Unlock()

	shardStats := make([]ShardStat, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		g.mu.Lock()
		healthy := b.healthy
		g.mu.Unlock()
		shardStats[i] = ShardStat{Name: b.name, Healthy: healthy}
		if !healthy {
			shardStats[i].Err = "ejected"
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			st, err := b.client.StatsSamples()
			if err != nil {
				shardStats[i].Err = err.Error()
				return
			}
			shardStats[i].Stats = &st
		}(i, b)
	}
	wg.Wait()

	var parts []online.EngineStats
	for _, s := range shardStats {
		if s.Stats == nil {
			continue
		}
		r := s.Stats
		parts = append(parts, online.EngineStats{
			Now:              r.Now,
			Epochs:           r.Epochs,
			Decisions:        r.Decisions,
			Admitted:         r.Admitted,
			Completed:        r.Completed,
			Active:           r.Active,
			ActiveFlows:      r.ActiveFlows,
			WeightedCCT:      r.WeightedCCT,
			WeightedResponse: r.WeightedResponse,
			Slowdowns:        r.Slowdowns,
			SolveLatencies:   r.SolveLatencies,
		})
	}
	return online.MergeEngineStats(parts...), shardStats
}

// MergedSchedule scatter-gathers /v1/schedule from every healthy backend,
// translates backend-local coflow ids to gateway ids, and interleaves the
// shard orders round-robin. Shards are independent fabrics, so relative
// priority across shards carries no scheduling meaning — the interleave is
// just a stable presentation.
func (g *Gateway) MergedSchedule() (server.ScheduleResponse, error) {
	g.mu.Lock()
	backends := g.healthyLocked(nil)
	g.mu.Unlock()

	type shardOrder struct {
		b    *Backend
		resp server.ScheduleResponse
		err  error
	}
	orders := make([]shardOrder, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			orders[i].b = b
			orders[i].resp, orders[i].err = b.client.Schedule()
		}(i, b)
	}
	wg.Wait()

	out := server.ScheduleResponse{Order: []server.ScheduleEntry{}}
	g.mu.Lock()
	defer g.mu.Unlock()
	translated := make([][]server.ScheduleEntry, 0, len(orders))
	for _, o := range orders {
		if o.err != nil {
			continue // a shard mid-ejection simply contributes nothing
		}
		if o.resp.Now > out.Now {
			out.Now = o.resp.Now
		}
		out.Policy = o.resp.Policy
		var entries []server.ScheduleEntry
		for _, e := range o.resp.Order {
			gid, ok := o.b.local[e.Coflow]
			if !ok {
				continue // completed or re-admitted since the shard answered
			}
			entries = append(entries, server.ScheduleEntry{Coflow: gid, Flow: e.Flow})
		}
		translated = append(translated, entries)
	}
	for i := 0; ; i++ {
		appended := false
		for _, entries := range translated {
			if i < len(entries) {
				out.Order = append(out.Order, entries[i])
				appended = true
			}
		}
		if !appended {
			break
		}
	}
	return out, nil
}

// Network returns the topology of the first healthy backend. The gateway
// assumes every shard runs the same fabric shape (cmd/coflowgate and
// NewLocal construct them that way); load generators only need host ids that
// are valid on whichever shard a coflow lands on.
func (g *Gateway) Network() (server.NetworkResponse, error) {
	g.mu.Lock()
	backends := g.healthyLocked(nil)
	g.mu.Unlock()
	var lastErr error = errNoBackend
	for _, b := range backends {
		net, err := b.client.Network()
		if err == nil {
			return net, nil
		}
		lastErr = err
	}
	return server.NetworkResponse{}, lastErr
}

// Counters snapshots the gateway-level accounting (not shard state).
type Counters struct {
	Coflows   int `json:"coflows"`   // gateway ids assigned
	Completed int `json:"completed"` // observed complete through the gateway
	Readmits  int `json:"readmits"`  // post-ejection re-admissions
	Backends  int `json:"backends"`
	Healthy   int `json:"healthy_backends"`
}

// CountersSnapshot reads the gateway counters.
func (g *Gateway) CountersSnapshot() Counters {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := Counters{
		Coflows:   len(g.coflows),
		Completed: g.completed,
		Readmits:  g.readmits,
		Backends:  len(g.backends),
	}
	for _, b := range g.backends {
		if b.healthy {
			c.Healthy++
		}
	}
	return c
}

// PlacementName names the configured placement policy.
func (g *Gateway) PlacementName() string { return g.cfg.Placement.Name() }
