package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/online"
	"coflowsched/internal/telemetry"
)

// getJSON fetches one URL and decodes its JSON body.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("get %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

// getMetrics fetches and strictly parses one /metrics endpoint.
func getMetrics(t *testing.T, url string) *telemetry.Metrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("get metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("%s/metrics content type = %q", url, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	m, err := telemetry.ParseMetrics(string(body))
	if err != nil {
		t.Fatalf("%s/metrics does not parse: %v", url, err)
	}
	return m
}

// TestClusterObservability is the observability smoke run by the CI race job:
// one coflow admitted through the gateway must produce (1) strictly parseable
// /metrics on the gateway and a shard, (2) a lifecycle trace joined across
// the gateway's and the owning shard's /debug/traces by the trace id the
// admit response returned, and (3) well-formed /v1/epochs on both tiers.
func TestClusterObservability(t *testing.T) {
	l := newLocalCluster(t, 2, ConsistentHash{}, 200)
	c := l.Client()

	hosts := graph.FatTree(4, 1).Hosts()
	cf := coflow.Coflow{Name: "obs", Weight: 1, Flows: []coflow.Flow{
		{Source: hosts[0], Dest: hosts[1], Size: 1},
		{Source: hosts[2], Dest: hosts[3], Size: 2},
	}}
	resp, err := c.Admit(cf)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if resp.Trace == "" {
		t.Fatal("admit response carries no trace id")
	}

	// Wait for completion so the shard has recorded the whole lifecycle.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, err := c.Coflow(resp.ID)
		if err == nil && st.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coflow did not complete (last: %+v, err=%v)", st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// (1) Metrics: both tiers must serve a strictly parseable exposition with
	// their stable series names.
	gm := getMetrics(t, l.URL())
	for _, name := range []string{
		"coflowgate_up", "coflowgate_coflows_total", "coflowgate_backends_healthy",
		"coflowgate_http_requests_total", "coflowgate_admit_seconds_bucket",
	} {
		if _, ok := firstSample(gm, name); !ok {
			t.Errorf("gateway metrics missing %s", name)
		}
	}
	if s, ok := gm.Get("coflowgate_backend_up", "shard", "shard0"); !ok || s.Value != 1 {
		t.Errorf("coflowgate_backend_up{shard=shard0} = %+v, %v", s, ok)
	}
	sm := getMetrics(t, l.ShardURL(0))
	for _, name := range []string{
		"coflowd_up", "coflowd_coflows_admitted_total", "coflowd_tick_duration_seconds_bucket",
		"coflowd_trace_spans_total",
	} {
		if _, ok := firstSample(sm, name); !ok {
			t.Errorf("shard metrics missing %s", name)
		}
	}
	if s, ok := sm.Get("coflowd_up", "shard", "shard0"); !ok || s.Value != 1 {
		t.Errorf(`coflowd_up{shard="shard0"} = %+v, %v`, s, ok)
	}

	// (2) Traces: the gateway ring holds the front-door spans under the trace
	// id, and exactly one shard holds the joined shard-side spans.
	var gdump telemetry.TraceDump
	getJSON(t, fmt.Sprintf("%s/debug/traces?trace=%s", l.URL(), resp.Trace), &gdump)
	wantGateway := map[string]bool{"admit": false, "batch-flush": false, "placement": false}
	for _, sp := range gdump.Spans {
		if _, ok := wantGateway[sp.Name]; ok {
			wantGateway[sp.Name] = true
		}
		if sp.Component != "coflowgate" {
			t.Errorf("gateway span %s has component %q", sp.Name, sp.Component)
		}
	}
	for name, seen := range wantGateway {
		if !seen {
			t.Errorf("gateway trace %s lacks a %s span (got %d spans)", resp.Trace, name, len(gdump.Spans))
		}
	}
	joined := 0
	for i := 0; i < l.NumShards(); i++ {
		var sdump telemetry.TraceDump
		getJSON(t, fmt.Sprintf("%s/debug/traces?trace=%s", l.ShardURL(i), resp.Trace), &sdump)
		if len(sdump.Spans) == 0 {
			continue
		}
		joined++
		wantShard := map[string]bool{"shard-admit": false, "completion": false}
		for _, sp := range sdump.Spans {
			if _, ok := wantShard[sp.Name]; ok {
				wantShard[sp.Name] = true
			}
			if sp.Component != "coflowd" {
				t.Errorf("shard span %s has component %q", sp.Name, sp.Component)
			}
		}
		for name, seen := range wantShard {
			if !seen {
				t.Errorf("shard %d trace %s lacks a %s span", i, resp.Trace, name)
			}
		}
	}
	if joined != 1 {
		t.Errorf("trace %s joined on %d shards, want exactly 1", resp.Trace, joined)
	}

	// (3) Epochs: the shard ring must hold ticks by now, and the gateway view
	// must scatter-gather every shard's ring.
	var shardEpochs struct {
		Policy  string `json:"policy"`
		Records []struct {
			Epoch       int     `json:"epoch"`
			TickSeconds float64 `json:"tick_seconds"`
		} `json:"records"`
	}
	getJSON(t, l.ShardURL(0)+"/v1/epochs?n=16", &shardEpochs)
	if shardEpochs.Policy == "" || len(shardEpochs.Records) == 0 {
		t.Errorf("shard /v1/epochs is empty: %+v", shardEpochs)
	}
	var gateEpochs gateEpochsResponse
	getJSON(t, l.URL()+"/v1/epochs?n=16", &gateEpochs)
	if len(gateEpochs.Shards) != l.NumShards() {
		t.Fatalf("gateway /v1/epochs reports %d shards, want %d", len(gateEpochs.Shards), l.NumShards())
	}
	for _, sh := range gateEpochs.Shards {
		if sh.Err != "" {
			t.Errorf("gateway /v1/epochs shard %s errored: %s", sh.Name, sh.Err)
		}
		if len(sh.Records) == 0 {
			t.Errorf("gateway /v1/epochs shard %s has no records", sh.Name)
		}
	}
}

// TestClusterStageSpans drives one admission through the gateway of a
// durable, partition-parallel cluster and asserts the hot-path pipeline is
// observable end to end: the admit's trace id must join the gateway spans
// with the shard's per-stage spans (coalesce-wait → engine-admit →
// wal-append → group-commit), and the owning shard's /metrics must expose
// the stage and partition families those spans aggregate into.
func TestClusterStageSpans(t *testing.T) {
	l, err := NewLocal(LocalConfig{
		Shards:     2,
		Policy:     online.SEBFOnline{},
		TimeScale:  200,
		Partitions: 4,
		WALDir:     t.TempDir(),
		Gateway:    fastGatewayConfig(t, ConsistentHash{}),
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("new local cluster: %v", err)
	}
	t.Cleanup(l.Close)
	c := l.Client()

	hosts := graph.FatTree(4, 1).Hosts()
	cf := coflow.Coflow{Name: "stage-obs", Weight: 1, Flows: []coflow.Flow{
		{Source: hosts[0], Dest: hosts[1], Size: 1},
		{Source: hosts[2], Dest: hosts[3], Size: 2},
	}}
	resp, err := c.Admit(cf)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if resp.Trace == "" {
		t.Fatal("admit response carries no trace id")
	}

	// The gateway side of the join must be present under the same trace id.
	var gdump telemetry.TraceDump
	getJSON(t, fmt.Sprintf("%s/debug/traces?trace=%s", l.URL(), resp.Trace), &gdump)
	if len(gdump.Spans) == 0 {
		t.Fatalf("gateway trace %s holds no spans", resp.Trace)
	}

	// Exactly one shard owns the coflow; its ring must hold shard-admit plus
	// every pipeline stage span. The stage spans are recorded synchronously
	// before the admit response returns, so no waiting is needed.
	wantStages := []string{"coalesce-wait", "engine-admit", "wal-append", "group-commit"}
	joined := 0
	for i := 0; i < l.NumShards(); i++ {
		var sdump telemetry.TraceDump
		getJSON(t, fmt.Sprintf("%s/debug/traces?trace=%s", l.ShardURL(i), resp.Trace), &sdump)
		if len(sdump.Spans) == 0 {
			continue
		}
		joined++
		seen := map[string]bool{}
		for _, sp := range sdump.Spans {
			seen[sp.Name] = true
		}
		if !seen["shard-admit"] {
			t.Errorf("shard %d trace %s lacks a shard-admit span", i, resp.Trace)
		}
		for _, name := range wantStages {
			if !seen[name] {
				t.Errorf("shard %d trace %s lacks a %s stage span", i, resp.Trace, name)
			}
		}

		// The same shard's exposition must carry the aggregate families the
		// spans feed: the per-stage histogram with every pipeline stage
		// child, records-per-fsync, and the partition instrumentation.
		sm := getMetrics(t, l.ShardURL(i))
		for _, stage := range []string{"coalesce-wait", "batch-assembly", "engine-admit", "wal-append", "group-commit"} {
			if _, ok := sm.Get("coflowd_admit_stage_seconds_count", "stage", stage); !ok {
				t.Errorf("shard %d metrics lack coflowd_admit_stage_seconds{stage=%q}", i, stage)
			}
		}
		for _, name := range []string{
			"coflowd_wal_records_per_fsync_count",
			"coflowd_partition_realloc_seconds_count",
			"coflowd_partition_imbalance_ratio",
		} {
			if _, ok := firstSample(sm, name); !ok {
				t.Errorf("shard %d metrics missing %s", i, name)
			}
		}
	}
	if joined != 1 {
		t.Errorf("trace %s joined on %d shards, want exactly 1", resp.Trace, joined)
	}
}

// firstSample finds any sample of the named family regardless of labels.
func firstSample(m *telemetry.Metrics, name string) (telemetry.Sample, bool) {
	for _, s := range m.Samples {
		if s.Name == name {
			return s, true
		}
	}
	return telemetry.Sample{}, false
}
