package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"testing"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/monitor"
	"coflowsched/internal/server"
)

// recoveryCoflow builds a two-flow coflow on the shards' fat-tree hosts.
func recoveryCoflow(name string, size float64) coflow.Coflow {
	hosts := graph.FatTree(4, 1).Hosts()
	return coflow.Coflow{
		Name: name, Weight: 1,
		Flows: []coflow.Flow{
			{Source: hosts[0], Dest: hosts[5], Size: size},
			{Source: hosts[3], Dest: hosts[9], Size: size},
		},
	}
}

// TestGatewayRestartRecovery: a durable gateway is crash-killed and restarted
// against live shards. The recovered translation and placement tables must
// keep every old gateway id routable (/v1/coflows/{id}), keep /v1/stats
// merging coherent, continue the id sequence for new work — and never
// re-admit a coflow the shards still hold.
func TestGatewayRestartRecovery(t *testing.T) {
	l, err := NewLocal(LocalConfig{
		Shards:    2,
		TimeScale: 1, // slow clock: coflows stay in flight across the restart
		Gateway:   fastGatewayConfig(t, ConsistentHash{}),
		WALDir:    t.TempDir(),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("new durable cluster: %v", err)
	}
	t.Cleanup(l.Close)
	c := l.Client()

	const n = 6
	for i := 0; i < n; i++ {
		if _, err := c.Admit(recoveryCoflow(fmt.Sprintf("dur-%d", i), 40)); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	before := make([]server.CoflowResponse, n)
	for gid := range before {
		st, err := c.Coflow(gid)
		if err != nil {
			t.Fatalf("coflow %d before restart: %v", gid, err)
		}
		before[gid] = st
	}

	if err := l.RestartGateway(); err != nil {
		t.Fatalf("restart gateway: %v", err)
	}

	cs := l.Gateway.CountersSnapshot()
	if cs.Coflows != n {
		t.Fatalf("restarted gateway knows %d coflows, want %d", cs.Coflows, n)
	}
	// Old ids must route to their original shards: same name, same shard-local
	// arrival — the binding was recovered, not re-created.
	for gid := 0; gid < n; gid++ {
		st, err := c.Coflow(gid)
		if err != nil {
			t.Fatalf("coflow %d after restart: %v", gid, err)
		}
		if st.Name != before[gid].Name {
			t.Errorf("coflow %d name = %q after restart, was %q", gid, st.Name, before[gid].Name)
		}
	}
	// Stats merging still resolves across the recovered placement table.
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats after restart: %v", err)
	}
	if st.Admitted != n {
		t.Errorf("merged admitted = %d after restart, want %d", st.Admitted, n)
	}

	// New admissions continue the id sequence, and the gateway echoes the new
	// id as the X-Coflow-Id retry-dedupe handle.
	body, _ := json.Marshal(recoveryCoflow("post-restart", 1))
	resp, err := http.Post(l.URL()+"/v1/coflows", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("admit after restart: %v", err)
	}
	var ar server.AdmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatalf("decode admit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || ar.ID != n {
		t.Fatalf("admit after restart = %d id %d, want 201 id %d", resp.StatusCode, ar.ID, n)
	}
	if got := resp.Header.Get(server.IdemHeader); got != strconv.Itoa(n) {
		t.Errorf("%s echo = %q, want %q", server.IdemHeader, got, strconv.Itoa(n))
	}

	// Everything runs dry — the pre-restart coflows complete where they were
	// placed; nothing is ever re-admitted.
	if _, err := l.DrainAll(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for gid := 0; gid <= n; gid++ {
		waitFor(t, 10*time.Second, "completion", func() bool {
			st, err := c.Coflow(gid)
			return err == nil && st.Done
		})
	}
	if got := l.Gateway.CountersSnapshot().Readmits; got != 0 {
		t.Errorf("gateway re-admitted %d coflows across its restart, want 0", got)
	}
}

// fetchSLO reads the monitor's rule states by name.
func fetchSLO(t *testing.T, monitorURL string) map[string]monitor.RuleState {
	t.Helper()
	resp, err := http.Get(monitorURL + "/v1/slo")
	if err != nil {
		t.Fatalf("GET /v1/slo: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Rules []monitor.RuleStatus `json:"rules"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /v1/slo: %v", err)
	}
	states := map[string]monitor.RuleState{}
	for _, r := range body.Rules {
		states[r.Rule.Name] = r.State
	}
	return states
}

// TestClusterCrashRecovery is the recovery smoke: a durable shard is
// crash-killed with coflows in flight and restarted against the same WAL
// directory. The gateway (ShardRecovery) must hold the placement bindings
// instead of re-admitting, the monitor's shard-down rule must fire and then
// resolve, and the recovered coflows must reach completion on their original
// shard — recovery, not re-admission.
func TestClusterCrashRecovery(t *testing.T) {
	cfg := fastGatewayConfig(t, LeastLoad{})
	l, err := NewLocal(LocalConfig{
		Shards:    2,
		TimeScale: 1, // slow clock: the crash lands mid-flight
		Gateway:   cfg,
		WALDir:    t.TempDir(),
		Monitor:   &monitor.Config{Interval: 100 * time.Millisecond},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("new durable cluster: %v", err)
	}
	t.Cleanup(l.Close)
	c := l.Client()

	const n = 6
	for i := 0; i < n; i++ {
		if _, err := c.Admit(recoveryCoflow(fmt.Sprintf("crash-%d", i), 40)); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	victimStats, err := l.Shard(0).Stats()
	if err != nil {
		t.Fatalf("victim stats: %v", err)
	}
	if victimStats.Admitted == 0 {
		t.Fatal("victim shard received no coflows; test cannot exercise recovery")
	}

	l.CrashKill(0) // SIGKILL-shaped: no drain, no final fsync
	waitFor(t, 5*time.Second, "ejection", func() bool {
		return l.Gateway.CountersSnapshot().Healthy == 1
	})
	waitFor(t, 20*time.Second, "shard-down firing", func() bool {
		return fetchSLO(t, l.MonitorURL())["shard-down"] == monitor.StateFiring
	})
	// Durable shards: the ejection must NOT have detached the victim's
	// coflows for re-admission elsewhere.
	if got := l.Gateway.CountersSnapshot().Readmits; got != 0 {
		t.Fatalf("gateway re-admitted %d coflows from a durable shard, want 0", got)
	}

	if err := l.Restart(0); err != nil {
		t.Fatalf("restart shard: %v", err)
	}
	waitFor(t, 5*time.Second, "re-admission to rotation", func() bool {
		return l.Gateway.CountersSnapshot().Healthy == 2
	})
	// The restarted daemon recovered its own coflows from the WAL: same
	// admitted count as before the crash, nothing re-admitted through the
	// gateway.
	rs, err := l.Shard(0).Stats()
	if err != nil {
		t.Fatalf("recovered shard stats: %v", err)
	}
	if rs.Admitted != victimStats.Admitted {
		t.Fatalf("recovered shard admitted = %d, pre-crash %d", rs.Admitted, victimStats.Admitted)
	}
	waitFor(t, 30*time.Second, "shard-down resolution", func() bool {
		s := fetchSLO(t, l.MonitorURL())["shard-down"]
		return s == monitor.StateResolved || s == monitor.StateHealthy
	})

	// The recovered coflows run to completion on their original shard.
	if _, err := l.DrainAll(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for gid := 0; gid < n; gid++ {
		waitFor(t, 10*time.Second, "completion", func() bool {
			st, err := c.Coflow(gid)
			return err == nil && st.Done
		})
	}
	cs := l.Gateway.CountersSnapshot()
	if cs.Readmits != 0 {
		t.Errorf("readmits = %d after recovery, want 0 (completion, not re-admission)", cs.Readmits)
	}
	if cs.Completed != n {
		t.Errorf("gateway observed %d completions, want %d", cs.Completed, n)
	}
}
