package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/durable"
	"coflowsched/internal/server"
	"coflowsched/internal/telemetry"
)

// Gateway durability. With Config.StateDir set, the gateway write-ahead logs
// the two tables a restart must not lose — the id-translation table (gateway
// id -> spec, assigned at admission) and the placement table (gateway id ->
// backend + shard-local id) — plus observed completions, and snapshots the
// whole routing state periodically so the log stays short. A restarted
// gateway rebuilds its tables before serving: recovered placements are held
// as pending bindings until their backend is registered again (AddBackend),
// at which point they re-attach without re-admission when the shards are
// durable too (Config.ShardRecovery), or re-place from the retained specs
// when they are not.
//
// Durability boundary: gw-admit is group-committed before the coflow is
// queued for placement (an acknowledged gateway id must survive), gw-place
// before the 201 leaves the gateway. gw-done rides along uncommitted — a
// lost completion record is re-observed from the shard on the next sweep.

// gateSnapshotKeep bounds retained gateway snapshots: the newest is the
// restore point, the older ones are insurance against a torn newest.
const gateSnapshotKeep = 3

// gatePersist is the gateway snapshot body: the instance nonce, the
// gateway-level counters, and the routing table in gid order.
type gatePersist struct {
	Instance  string          `json:"instance"`
	Completed int             `json:"completed"`
	Readmits  int             `json:"readmits"`
	Coflows   []routedPersist `json:"coflows"`
}

// routedPersist is one routed coflow as persisted. Backend names the owning
// (or last-known) shard; on restore it becomes a pending binding.
type routedPersist struct {
	Spec     coflow.Coflow          `json:"spec"`
	Trace    string                 `json:"trace,omitempty"`
	Backend  string                 `json:"backend,omitempty"`
	LocalID  int                    `json:"local_id,omitempty"`
	Arrival  float64                `json:"arrival,omitempty"`
	Failed   bool                   `json:"failed,omitempty"`
	Done     bool                   `json:"done,omitempty"`
	Final    *server.CoflowResponse `json:"final,omitempty"`
	Readmits int                    `json:"readmits,omitempty"`
}

// recoverGateway rebuilds the routing state from cfg.StateDir: newest usable
// snapshot, then the log suffix, then the log is opened for appending. Runs
// before the gateway goroutines start, so it touches fields without locking.
// An untrustworthy log fails the boot.
func (g *Gateway) recoverGateway() error {
	store := g.cfg.SnapshotStore
	if store == nil {
		ds, err := durable.NewDirStore(filepath.Join(g.cfg.StateDir, "snapshots"))
		if err != nil {
			return fmt.Errorf("cluster: opening snapshot store: %w", err)
		}
		store = ds
	}
	g.store = store
	ctx := context.Background()
	var persist gatePersist
	seq, ok, skipped, err := durable.LatestSnapshot(ctx, store, &persist)
	if err != nil {
		return fmt.Errorf("cluster: reading snapshots: %w", err)
	}
	if skipped > 0 {
		g.logger.Warn("skipped unreadable snapshots", "count", skipped)
	}
	if ok {
		g.instance = persist.Instance
		g.completed = persist.Completed
		g.readmits = persist.Readmits
		g.coflows = make([]*routed, 0, len(persist.Coflows))
		for _, rp := range persist.Coflows {
			rc := &routed{spec: rp.Spec, trace: rp.Trace, arrival: rp.Arrival,
				failed: rp.Failed, readmits: rp.Readmits}
			if rp.Done {
				rc.done = true
				if rp.Final != nil {
					rc.final = *rp.Final
				}
			} else if rp.Backend != "" {
				rc.pendingBackend = rp.Backend
				rc.localID = rp.LocalID
			}
			g.coflows = append(g.coflows, rc)
		}
	}

	last, err := durable.Replay(g.cfg.StateDir, seq+1, g.applyGateRecord)
	if err != nil {
		return fmt.Errorf("cluster: replaying wal: %w", err)
	}
	g.wal, err = durable.Open(g.cfg.StateDir, durable.Options{})
	if err != nil {
		return fmt.Errorf("cluster: opening wal: %w", err)
	}
	if got := g.wal.LastSeq(); got < last {
		return fmt.Errorf("%w: log reopened at seq %d after replaying through %d", durable.ErrCorrupt, got, last)
	}
	if g.instance == "" {
		// Fresh log: mint the instance nonce and make it the first durable
		// record, so every idempotency key this incarnation ever sends a shard
		// is scoped by a value the log can reproduce.
		g.instance = telemetry.NewTraceID()
		mseq, err := g.wal.Append(&durable.Record{Type: durable.RecGatewayMeta,
			GatewayMeta: &durable.GatewayMetaRecord{Instance: g.instance}})
		if err == nil {
			err = g.wal.Commit(mseq)
		}
		if err != nil {
			return fmt.Errorf("cluster: writing instance record: %w", err)
		}
	}
	for _, rc := range g.coflows {
		if rc.done || rc.failed {
			continue
		}
		g.recovered++
		if rc.pendingBackend == "" {
			// Acknowledged but never durably placed: detach it so the next
			// backend registration re-places it from the retained spec.
			rc.orphaned = true
		}
	}
	if len(g.coflows) > 0 {
		g.logger.Info("gateway state recovered", "coflows", len(g.coflows),
			"in_flight", g.recovered, "completed", g.completed, "instance", g.instance)
	}
	return nil
}

// applyGateRecord replays one WAL record into the recovering routing table.
// Any record that cannot apply marks the log corrupt: the log claims a
// history this gateway cannot have written.
func (g *Gateway) applyGateRecord(r *durable.Record) error {
	switch r.Type {
	case durable.RecGatewayMeta:
		g.instance = r.GatewayMeta.Instance
	case durable.RecGatewayAdmit:
		a := r.GatewayAdmit
		if a.GID != len(g.coflows) {
			return fmt.Errorf("%w: gw-admit record seq %d assigns gid %d, next is %d",
				durable.ErrCorrupt, r.Seq, a.GID, len(g.coflows))
		}
		g.coflows = append(g.coflows, &routed{spec: a.Spec, trace: a.Trace})
	case durable.RecGatewayPlace:
		p := r.GatewayPlace
		if p.GID < 0 || p.GID >= len(g.coflows) {
			return fmt.Errorf("%w: gw-place record seq %d names unknown gid %d",
				durable.ErrCorrupt, r.Seq, p.GID)
		}
		if rc := g.coflows[p.GID]; !rc.done {
			// Re-placements append a fresh record; last one wins.
			rc.pendingBackend = p.Backend
			rc.localID = p.LocalID
			rc.arrival = p.Arrival
			rc.admitted = false
			rc.orphaned = false
		}
	case durable.RecGatewayDone:
		d := r.GatewayDone
		if d.GID < 0 || d.GID >= len(g.coflows) {
			return fmt.Errorf("%w: gw-done record seq %d names unknown gid %d",
				durable.ErrCorrupt, r.Seq, d.GID)
		}
		rc := g.coflows[d.GID]
		if rc.done {
			return nil
		}
		var final server.CoflowResponse
		if len(d.Final) > 0 {
			if err := json.Unmarshal(d.Final, &final); err != nil {
				return fmt.Errorf("%w: gw-done record seq %d final body: %v", durable.ErrCorrupt, r.Seq, err)
			}
		}
		rc.done = true
		rc.final = final
		rc.pendingBackend = ""
		g.completed++
		rc.spec = coflow.Coflow{Name: rc.spec.Name, Weight: rc.spec.Weight}
	default:
		return fmt.Errorf("%w: record seq %d has type %q, which does not belong in a gateway log",
			durable.ErrCorrupt, r.Seq, r.Type)
	}
	return nil
}

// walAppendLocked appends one record while the caller holds g.mu (so record
// order matches table order). WAL failure is fail-stop for durability — the
// sticky error fails every later append, so no new admission is acknowledged
// — and is logged once.
func (g *Gateway) walAppendLocked(r *durable.Record) (uint64, error) {
	seq, err := g.wal.Append(r)
	if err != nil && !g.walFailed {
		g.walFailed = true
		g.logger.Error("wal append failed; admissions are now rejected", "err", err)
	}
	return seq, err
}

// logDoneLocked appends the gw-done record for an observed completion.
// Caller holds g.mu. Uncommitted by design: the completion fact lives on the
// shard and is re-observed if the record is lost to a crash.
func (g *Gateway) logDoneLocked(gid int, st server.CoflowResponse) {
	if g.wal == nil {
		return
	}
	body, err := json.Marshal(st)
	if err != nil {
		return
	}
	_, _ = g.walAppendLocked(&durable.Record{Type: durable.RecGatewayDone,
		GatewayDone: &durable.GatewayDoneRecord{GID: gid, Final: body}})
}

// maybeSnapshotGateway captures the routing state under the lock and writes
// it out on a separate goroutine, then drops the log prefix the snapshot
// covers. At most one snapshot is in flight.
func (g *Gateway) maybeSnapshotGateway() {
	if g.wal == nil || !g.snapshotting.CompareAndSwap(false, true) {
		return
	}
	g.mu.Lock()
	// Everything through seq is reflected in the export: every append happens
	// under g.mu, and both reads happen inside one critical section.
	seq := g.wal.LastSeq()
	persist := g.exportLocked()
	g.mu.Unlock()
	if seq == 0 {
		g.snapshotting.Store(false)
		return
	}
	go func() {
		defer g.snapshotting.Store(false)
		t0 := time.Now()
		ctx := context.Background()
		key, err := durable.WriteSnapshot(ctx, g.store, seq, persist)
		if err == nil {
			err = g.wal.TruncateBefore(seq + 1)
		}
		if err == nil {
			err = durable.PruneSnapshots(ctx, g.store, gateSnapshotKeep)
		}
		if err != nil {
			g.logger.Error("snapshot failed", "seq", seq, "err", err)
			return
		}
		g.metrics.snapshots.Inc()
		g.logger.Info("snapshot written", "key", key, "seq", seq,
			"segments", g.wal.SegmentCount(), "took", time.Since(t0))
	}()
}

// exportLocked snapshots the routing table. Caller holds g.mu.
func (g *Gateway) exportLocked() gatePersist {
	p := gatePersist{
		Instance:  g.instance,
		Completed: g.completed,
		Readmits:  g.readmits,
		Coflows:   make([]routedPersist, len(g.coflows)),
	}
	for i, rc := range g.coflows {
		rp := routedPersist{Spec: rc.spec, Trace: rc.trace, Arrival: rc.arrival,
			Failed: rc.failed, Done: rc.done, Readmits: rc.readmits}
		switch {
		case rc.done:
			final := rc.final
			rp.Final = &final
		case rc.backend != nil && rc.admitted:
			rp.Backend = rc.backend.name
			rp.LocalID = rc.localID
		case rc.pendingBackend != "":
			rp.Backend = rc.pendingBackend
			rp.LocalID = rc.localID
		}
		p.Coflows[i] = rp
	}
	return p
}
