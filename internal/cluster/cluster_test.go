package cluster

import (
	"strings"
	"testing"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/online"
	"coflowsched/internal/server"
	"coflowsched/internal/workload"
)

// fastGatewayConfig is tuned for tests: quick probes, single-failure
// ejection, no client retries (failures surface immediately).
func fastGatewayConfig(t *testing.T, placement Placement) Config {
	return Config{
		Placement:       placement,
		HealthInterval:  20 * time.Millisecond,
		FailThreshold:   1,
		BackoffMax:      200 * time.Millisecond,
		BatchSize:       8,
		BatchInterval:   2 * time.Millisecond,
		ClientTimeout:   2 * time.Second,
		ClientRetries:   1,
		ClientRetryBase: 5 * time.Millisecond,
		Logf:            t.Logf,
	}
}

func newLocalCluster(t *testing.T, shards int, placement Placement, timeScale float64) *Local {
	t.Helper()
	l, err := NewLocal(LocalConfig{
		Shards:    shards,
		Policy:    online.SEBFOnline{},
		TimeScale: timeScale,
		Gateway:   fastGatewayConfig(t, placement),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("new local cluster: %v", err)
	}
	t.Cleanup(l.Close)
	return l
}

// TestClusterScenarioReplay is the CI cluster smoke: a 3-shard in-process
// cluster replays the uniform scenario through the gateway; every coflow
// must complete and the merged statistics must be coherent.
func TestClusterScenarioReplay(t *testing.T) {
	l := newLocalCluster(t, 3, ConsistentHash{}, 200)
	c := l.Client()

	sc, ok := workload.LookupScenario("uniform")
	if !ok {
		t.Fatal("uniform scenario not registered")
	}
	inst, arrivals, err := sc.Build()
	if err != nil {
		t.Fatalf("build scenario: %v", err)
	}
	report, err := server.RunLoad(c, server.LoadConfig{
		Instance:     inst,
		Arrivals:     arrivals,
		SpeedUp:      50, // compress the ~5 simulated-time-unit arrival span
		Concurrency:  4,
		WaitComplete: true,
		WaitTimeout:  60 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("replay through gateway: %v", err)
	}
	if report.Failures != 0 {
		t.Fatalf("replay had %d failures (first: %s)", report.Failures, report.FirstError)
	}
	want := len(inst.Coflows)
	if report.Completed != want {
		t.Fatalf("completed %d of %d coflows", report.Completed, want)
	}

	// Merged stats must agree with the gateway's own accounting and be sane.
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("gateway stats: %v", err)
	}
	if st.Admitted != want || st.Completed != want {
		t.Errorf("merged admitted/completed = %d/%d, want %d/%d", st.Admitted, st.Completed, want, want)
	}
	if st.Active != 0 {
		t.Errorf("merged active = %d, want 0", st.Active)
	}
	if st.WeightedResponse <= 0 || st.WeightedCCT <= 0 {
		t.Errorf("merged objectives not positive: cct=%v response=%v", st.WeightedCCT, st.WeightedResponse)
	}
	if st.SlowdownP50 < 1-1e-9 {
		t.Errorf("merged slowdown p50 = %v, want >= 1 (response cannot beat the isolated bottleneck)", st.SlowdownP50)
	}
	if st.SlowdownP95 < st.SlowdownP50 {
		t.Errorf("slowdown p95 %v < p50 %v", st.SlowdownP95, st.SlowdownP50)
	}

	// The coflows really are spread: with 10 coflows hash-placed on 3 shards,
	// at least two shards must have seen work.
	used := 0
	for i := 0; i < l.NumShards(); i++ {
		ss, err := l.Shard(i).Stats()
		if err != nil {
			t.Fatalf("shard %d stats: %v", i, err)
		}
		if ss.Admitted > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("only %d shard(s) received coflows; placement did not spread", used)
	}

	// Per-coflow status is served under gateway ids.
	cf, err := c.Coflow(0)
	if err != nil {
		t.Fatalf("coflow 0: %v", err)
	}
	if cf.ID != 0 || !cf.Done || cf.CCT == nil {
		t.Errorf("coflow 0 status %+v, want done with CCT", cf)
	}
	if _, err := c.Coflow(want + 7); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown gateway id error = %v, want 404", err)
	}
}

// TestClusterFailover: a backend dies mid-run; its in-flight coflows are
// re-admitted on the survivors, the backend is ejected, and after a revive
// it rejoins the rotation and receives new work. Every coflow completes.
func TestClusterFailover(t *testing.T) {
	l := newLocalCluster(t, 3, LeastLoad{}, 1) // slow clock: coflows stay in flight
	c := l.Client()

	hosts := graph.FatTree(4, 1).Hosts()
	mkCoflow := func(name string, size float64) coflow.Coflow {
		return coflow.Coflow{
			Name: name, Weight: 1,
			Flows: []coflow.Flow{
				{Source: hosts[0], Dest: hosts[5], Size: size},
				{Source: hosts[3], Dest: hosts[9], Size: size},
			},
		}
	}
	const n = 9
	for i := 0; i < n; i++ {
		if _, err := c.Admit(mkCoflow("job", 50)); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	// Least-load over 3 empty shards spreads 9 coflows 3/3/3.
	victimStats, err := l.Shard(1).Stats()
	if err != nil {
		t.Fatalf("victim stats: %v", err)
	}
	if victimStats.Admitted == 0 {
		t.Fatal("victim shard received no coflows; test cannot exercise failover")
	}

	l.Kill(1)
	// The health loop must eject the victim and re-admit its coflows on the
	// survivors: the gateway-level coflow count stays n, and the surviving
	// shards' admitted totals grow to n.
	waitFor(t, 5*time.Second, "ejection and re-admission", func() bool {
		cs := l.Gateway.CountersSnapshot()
		if cs.Healthy != 2 || cs.Readmits < victimStats.Admitted {
			return false
		}
		total := 0
		for i := 0; i < l.NumShards(); i++ {
			if srv := l.Shard(i); srv != nil {
				st, err := srv.Stats()
				if err != nil {
					return false
				}
				total += st.Admitted
			}
		}
		return total >= n
	})

	// While down, the ejected shard is reported unhealthy.
	var down *BackendStatus
	for _, bs := range l.Gateway.Backends() {
		if bs.Name == "shard1" {
			down = &bs
		}
	}
	if down == nil || down.Healthy {
		t.Fatalf("shard1 not reported ejected: %+v", down)
	}
	if down.Ejections == 0 {
		t.Errorf("shard1 ejection not counted: %+v", down)
	}

	// Revive: the exponential-backoff probe must re-admit it.
	if err := l.Revive(1); err != nil {
		t.Fatalf("revive: %v", err)
	}
	waitFor(t, 5*time.Second, "re-admission to rotation", func() bool {
		return l.Gateway.CountersSnapshot().Healthy == 3
	})

	// New work flows to the revived (now least-loaded, empty) shard.
	if _, err := c.Admit(mkCoflow("after-revive", 1)); err != nil {
		t.Fatalf("admit after revive: %v", err)
	}
	revived := l.Shard(1)
	if revived == nil {
		t.Fatal("revived shard has no server")
	}
	rs, err := revived.Stats()
	if err != nil {
		t.Fatalf("revived stats: %v", err)
	}
	if rs.Admitted == 0 {
		t.Errorf("revived shard received no new work under least-load placement")
	}

	// Run everything dry: every gateway coflow must report done, including
	// the re-admitted ones.
	if _, err := l.DrainAll(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for gid := 0; gid <= n; gid++ {
		waitFor(t, 10*time.Second, "completion", func() bool {
			st, err := c.Coflow(gid)
			return err == nil && st.Done
		})
	}
	cs := l.Gateway.CountersSnapshot()
	if cs.Completed != n+1 {
		t.Errorf("gateway observed %d completions, want %d", cs.Completed, n+1)
	}
}

// TestClusterBatching: admissions flush by count and by interval; both paths
// land coflows on shards.
func TestClusterBatching(t *testing.T) {
	cfg := fastGatewayConfig(t, ConsistentHash{})
	cfg.BatchSize = 4
	cfg.BatchInterval = 30 * time.Millisecond
	l, err := NewLocal(LocalConfig{
		Shards: 2, TimeScale: 100,
		Gateway: cfg, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("new local: %v", err)
	}
	t.Cleanup(l.Close)
	c := l.Client()
	hosts := graph.FatTree(4, 1).Hosts()
	cf := coflow.Coflow{Name: "b", Weight: 1, Flows: []coflow.Flow{{Source: hosts[0], Dest: hosts[1], Size: 1}}}

	// A single admission cannot fill the batch; only the interval flushes it.
	start := time.Now()
	if _, err := c.Admit(cf); err != nil {
		t.Fatalf("interval-flushed admit: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("interval flush took %v", elapsed)
	}

	// A burst flushes by count (from concurrent clients, as in RunLoad).
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := c.Admit(cf)
			errs <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("burst admit: %v", err)
		}
	}
	if got := l.Gateway.CountersSnapshot().Coflows; got != 9 {
		t.Errorf("gateway tracked %d coflows, want 9", got)
	}
}

// TestGatewayNoBackends: with every backend gone, admissions fail with 503
// and healthz reports degraded.
func TestGatewayNoBackends(t *testing.T) {
	l := newLocalCluster(t, 1, ConsistentHash{}, 100)
	c := l.Client()
	l.Kill(0)
	waitFor(t, 5*time.Second, "ejection", func() bool {
		return l.Gateway.CountersSnapshot().Healthy == 0
	})
	hosts := graph.FatTree(4, 1).Hosts()
	_, err := c.Admit(coflow.Coflow{Name: "x", Weight: 1, Flows: []coflow.Flow{{Source: hosts[0], Dest: hosts[1], Size: 1}}})
	if err == nil {
		t.Fatal("admit with no backends succeeded")
	}
	if _, err := c.Health(); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("healthz with no backends = %v, want 503", err)
	}
}

// TestGatewayValidationPassThrough: a coflow the shard rejects as malformed
// comes back 400 and is not retried across shards.
func TestGatewayValidationPassThrough(t *testing.T) {
	l := newLocalCluster(t, 2, ConsistentHash{}, 100)
	c := l.Client()
	// Endpoints outside every shard's network.
	_, err := c.Admit(coflow.Coflow{Name: "bad", Weight: 1, Flows: []coflow.Flow{{Source: 9000, Dest: 9001, Size: 1}}})
	if err == nil {
		t.Fatal("invalid coflow admitted")
	}
	if !strings.Contains(err.Error(), "400") {
		t.Errorf("validation error = %v, want a 400", err)
	}
	if got := l.Gateway.CountersSnapshot().Healthy; got != 2 {
		t.Errorf("validation failure cost a backend: healthy=%d", got)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCompletionSweep: the gateway converges on completions by itself — no
// client ever polls /v1/coflows/{id}, yet the completed counter rises, the
// outstanding counts drop back to zero, and the retained failover specs are
// released.
func TestCompletionSweep(t *testing.T) {
	l := newLocalCluster(t, 2, ConsistentHash{}, 500)
	c := l.Client()
	hosts := graph.FatTree(4, 1).Hosts()
	const n = 6
	for i := 0; i < n; i++ {
		cf := coflow.Coflow{Name: "fire-and-forget", Weight: 1,
			Flows: []coflow.Flow{{Source: hosts[0], Dest: hosts[7], Size: 1}}}
		if _, err := c.Admit(cf); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	waitFor(t, 10*time.Second, "sweep-observed completions", func() bool {
		return l.Gateway.CountersSnapshot().Completed == n
	})
	for _, bs := range l.Gateway.Backends() {
		if bs.Outstanding != 0 {
			t.Errorf("backend %s still reports %d outstanding", bs.Name, bs.Outstanding)
		}
	}
}

// TestLeastLoadSpreadsConcurrentBatch: placement reserves the slot before
// the HTTP admission, so a batch of concurrent admissions spreads across
// shards instead of all reading the same pre-admission load counts.
func TestLeastLoadSpreadsConcurrentBatch(t *testing.T) {
	l := newLocalCluster(t, 2, LeastLoad{}, 1) // slow clock: nothing completes mid-test
	c := l.Client()
	hosts := graph.FatTree(4, 1).Hosts()
	cf := coflow.Coflow{Name: "burst", Weight: 1,
		Flows: []coflow.Flow{{Source: hosts[0], Dest: hosts[10], Size: 30}}}
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.Admit(cf)
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("burst admit: %v", err)
		}
	}
	for _, bs := range l.Gateway.Backends() {
		if bs.Outstanding < 2 {
			t.Errorf("backend %s got %d of %d concurrent admissions; least-load did not spread: %+v",
				bs.Name, bs.Outstanding, n, l.Gateway.Backends())
		}
	}
}
