package cluster

import (
	"testing"

	"coflowsched/internal/coflow"
)

func mkBackends(names ...string) []*Backend {
	out := make([]*Backend, len(names))
	for i, n := range names {
		out[i] = &Backend{name: n, healthy: true, local: map[int]int{}}
	}
	return out
}

// TestConsistentHashDeterministic: the same id always lands on the same
// backend, and ids spread across the set.
func TestConsistentHashDeterministic(t *testing.T) {
	p := ConsistentHash{}
	backends := mkBackends("a", "b", "c")
	counts := map[string]int{}
	for id := 0; id < 300; id++ {
		b1 := p.Place(id, coflow.Coflow{}, backends)
		b2 := p.Place(id, coflow.Coflow{}, backends)
		if b1 != b2 {
			t.Fatalf("id %d placed on %s then %s", id, b1.name, b2.name)
		}
		counts[b1.name]++
	}
	for _, name := range []string{"a", "b", "c"} {
		if counts[name] < 50 {
			t.Errorf("backend %s got %d of 300 ids; hash does not spread (%v)", name, counts[name], counts)
		}
	}
}

// TestConsistentHashStability: removing one backend only moves the ids that
// lived on it — the defining property of consistent hashing.
func TestConsistentHashStability(t *testing.T) {
	p := ConsistentHash{}
	full := mkBackends("a", "b", "c")
	without := full[:2] // "c" ejected
	moved, stayed := 0, 0
	for id := 0; id < 300; id++ {
		before := p.Place(id, coflow.Coflow{}, full)
		after := p.Place(id, coflow.Coflow{}, without)
		if before.name == "c" {
			continue // had to move
		}
		if before.name == after.name {
			stayed++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d ids moved that did not live on the removed backend (stayed %d)", moved, stayed)
	}
}

// TestLeastLoadBalances: placement always picks the emptiest backend,
// tie-breaking deterministically by name.
func TestLeastLoadBalances(t *testing.T) {
	p := LeastLoad{}
	backends := mkBackends("a", "b", "c")
	backends[0].outstanding = 5
	backends[1].outstanding = 2
	backends[2].outstanding = 2
	if got := p.Place(0, coflow.Coflow{}, backends); got.name != "b" {
		t.Errorf("placed on %s, want b (least loaded, name tie-break)", got.name)
	}
	backends[1].outstanding = 9
	if got := p.Place(1, coflow.Coflow{}, backends); got.name != "c" {
		t.Errorf("placed on %s, want c", got.name)
	}
}

// TestParsePlacement covers the CLI mapping.
func TestParsePlacement(t *testing.T) {
	for name, want := range map[string]string{"hash": "hash", "least-load": "least-load"} {
		p, err := ParsePlacement(name)
		if err != nil {
			t.Fatalf("ParsePlacement(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("ParsePlacement(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ParsePlacement("round-robin"); err == nil {
		t.Error("unknown placement accepted")
	}
}
