package cluster

import (
	"encoding/json"
	"net/http"
	"os"
	"testing"
	"time"

	"coflowsched/internal/monitor"
	"coflowsched/internal/server"
	"coflowsched/internal/workload"
)

// TestClusterMonitorSLO is the CI monitor smoke: a 2-shard cluster with an
// embedded monitor replays a short scenario while every SLO stays healthy,
// then loses a shard — the shard-down rule must reach firing and the flight
// recorder must write a bundle.
func TestClusterMonitorSLO(t *testing.T) {
	bundleDir := t.TempDir()
	l, err := NewLocal(LocalConfig{
		Shards:    2,
		TimeScale: 200,
		Gateway: Config{
			// Fast health probing so the kill is detected within a few
			// monitor scrapes rather than the default 1s probe period.
			HealthInterval: 100 * time.Millisecond,
		},
		Monitor: &monitor.Config{
			Interval:  100 * time.Millisecond,
			BundleDir: bundleDir,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("new local cluster: %v", err)
	}
	t.Cleanup(l.Close)
	if l.Monitor == nil || l.MonitorURL() == "" {
		t.Fatal("embedded monitor not running")
	}

	// Drive a short scenario replay through the gateway while the monitor
	// scrapes it.
	sc, ok := workload.LookupScenario("uniform")
	if !ok {
		t.Fatal("uniform scenario not registered")
	}
	inst, arrivals, err := sc.Build()
	if err != nil {
		t.Fatalf("build scenario: %v", err)
	}
	report, err := server.RunLoad(l.Client(), server.LoadConfig{
		Instance:     inst,
		Arrivals:     arrivals,
		SpeedUp:      50,
		Concurrency:  4,
		WaitComplete: true,
		WaitTimeout:  60 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil || report.Failures != 0 {
		t.Fatalf("replay: err=%v failures=%+v", err, report)
	}

	// /v1/slo over HTTP: every rule healthy after a clean replay.
	fetchRules := func() []monitor.RuleStatus {
		t.Helper()
		resp, err := http.Get(l.MonitorURL() + "/v1/slo")
		if err != nil {
			t.Fatalf("GET /v1/slo: %v", err)
		}
		defer resp.Body.Close()
		var body struct {
			Rules   []monitor.RuleStatus `json:"rules"`
			Bundles []monitor.BundleInfo `json:"bundles"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode /v1/slo: %v", err)
		}
		return body.Rules
	}
	// Give the monitor a couple of intervals to have scraped post-replay.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rules := fetchRules()
		evaluated := len(rules) > 0
		healthy := true
		for _, r := range rules {
			if r.Evaluations == 0 {
				evaluated = false
			}
			if r.State == monitor.StateFiring || r.Firings > 0 {
				t.Fatalf("rule %s fired during a healthy replay: %+v", r.Rule.Name, r)
			}
			if r.State != monitor.StateHealthy {
				healthy = false
			}
		}
		if evaluated && healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rules never settled healthy: %+v", rules)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Kill a shard: its scrape fails immediately (up=0 → scrape-failure) and
	// the gateway's probes eject it (coflowgate_backend_up{shard=shard1}=0 →
	// shard-down). Both must reach firing, and firing must write a bundle.
	l.Kill(1)
	deadline = time.Now().Add(20 * time.Second)
	for {
		states := map[string]monitor.RuleState{}
		for _, r := range fetchRules() {
			states[r.Rule.Name] = r.State
		}
		if states["shard-down"] == monitor.StateFiring && states["scrape-failure"] == monitor.StateFiring {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard-down/scrape-failure never fired: %+v", states)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The bundle lands after the firing state becomes visible — capture
	// samples an on-alert CPU profile before writing — so poll for the file.
	for {
		entries, err := os.ReadDir(bundleDir)
		if err == nil && len(entries) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no flight-recorder bundle written: %v %v", entries, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	names := map[string]bool{}
	for _, b := range l.Monitor.Bundles() {
		names[b.Rule] = true
	}
	if !names["shard-down"] && !names["scrape-failure"] {
		t.Errorf("bundle index lacks the fired rules: %+v", l.Monitor.Bundles())
	}
}
