package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"time"

	"coflowsched/internal/graph"
	"coflowsched/internal/monitor"
	"coflowsched/internal/online"
	"coflowsched/internal/server"
	"coflowsched/internal/telemetry"
)

// LocalConfig parameterizes an in-process cluster: N coflowd shards, each a
// full server.Server behind its own loopback httptest listener, fronted by
// one gateway. Everything runs in this process — tests, coflowbench and
// coflowload use it to measure shard-count scaling without real networking.
type LocalConfig struct {
	// Shards is the number of backends (required > 0).
	Shards int
	// Policy, EpochLength, TimeScale, FatK and CandidatePaths configure every
	// shard identically (defaults: SEBF, 2, 1, k=4, 4). Each shard owns an
	// independent fabric of this shape.
	Policy         online.Policy
	EpochLength    float64
	TimeScale      float64
	FatK           int
	CandidatePaths int
	// Partitions > 1 runs each shard's simulator core on the pod-partitioned
	// parallel path with that many worker classes (0 keeps the server
	// default: sequential).
	Partitions int
	// Gateway configures the front door.
	Gateway Config
	// WALDir, when non-empty, makes the whole cluster durable: each shard
	// writes its WAL under WALDir/shardN, the gateway persists its routing
	// tables under WALDir/gateway, and Gateway.ShardRecovery is switched on so
	// a crash-killed shard restarted with Restart re-syncs from its own log
	// instead of being re-admitted from gateway memory.
	WALDir string
	// SnapshotInterval is handed to every shard and the gateway (zero keeps
	// their defaults, negative disables snapshotting). Only meaningful with
	// WALDir.
	SnapshotInterval time.Duration
	// Monitor, when non-nil, embeds a coflowmon monitor watching the whole
	// cluster: its DiscoverURL is wired to the gateway automatically, so it
	// scrapes the gateway and every shard and evaluates SLO rules (nil Rules
	// means DefaultRules over its Interval). The monitor's HTTP API is served
	// at MonitorURL().
	Monitor *monitor.Config
	// Logger receives structured shard and gateway logs (each shard's logger
	// gains its shard field automatically). Logf is the legacy printf sink,
	// used when Logger is nil.
	Logger *slog.Logger
	Logf   func(format string, args ...any)
}

func (c LocalConfig) withDefaults() (LocalConfig, error) {
	if c.Shards <= 0 {
		return c, fmt.Errorf("cluster: local cluster needs at least 1 shard, got %d", c.Shards)
	}
	if c.Policy == nil {
		c.Policy = online.SEBFOnline{}
	}
	if c.EpochLength <= 0 {
		c.EpochLength = 2
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.FatK <= 0 {
		c.FatK = 4
	}
	if c.Logger != nil && c.Gateway.Logger == nil {
		c.Gateway.Logger = c.Logger
	}
	if c.Logf != nil && c.Gateway.Logf == nil {
		c.Gateway.Logf = c.Logf
	}
	if c.WALDir != "" {
		if c.Gateway.StateDir == "" {
			c.Gateway.StateDir = filepath.Join(c.WALDir, "gateway")
		}
		if c.Gateway.SnapshotInterval == 0 {
			c.Gateway.SnapshotInterval = c.SnapshotInterval
		}
		c.Gateway.ShardRecovery = true
	}
	return c, nil
}

// localShard is one in-process backend. Kill drops its server (all engine
// state is lost, as with a crashed daemon) while the listener stays up and
// answers 503; Revive installs a fresh empty server at the same URL, the
// restart-after-crash the gateway's health loop is built to absorb.
type localShard struct {
	name string
	scfg server.Config
	ts   *httptest.Server

	mu      sync.Mutex
	srv     *server.Server
	handler http.Handler
	down    bool
}

func (sh *localShard) serve(w http.ResponseWriter, r *http.Request) {
	sh.mu.Lock()
	h, down := sh.handler, sh.down
	sh.mu.Unlock()
	if down || h == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"shard down"}` + "\n"))
		return
	}
	h.ServeHTTP(w, r)
}

// Local is an in-process cluster: gateway + N shards on loopback listeners,
// optionally watched by an embedded monitor.
type Local struct {
	// Gateway is the front door; URL() serves its HTTP API.
	Gateway *Gateway
	// Monitor is the embedded coflowmon instance (nil unless
	// LocalConfig.Monitor was set).
	Monitor *monitor.Monitor

	cfg         LocalConfig
	http        *httptest.Server
	monitorHTTP *httptest.Server
	shards      []*localShard

	// gmu guards the handler indirection that lets RestartGateway swap in a
	// fresh gateway while the listener URL stays the same.
	gmu            sync.Mutex
	gatewayHandler http.Handler
}

// NewLocal builds and starts an in-process cluster of cfg.Shards coflowd
// backends behind one gateway. Callers must Close it.
func NewLocal(cfg LocalConfig) (*Local, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	g, err := New(cfg.Gateway)
	if err != nil {
		return nil, err
	}
	l := &Local{cfg: cfg, Gateway: g}
	for i := 0; i < cfg.Shards; i++ {
		name := fmt.Sprintf("shard%d", i)
		scfg := server.Config{
			Network:        graph.FatTree(cfg.FatK, 1),
			Policy:         cfg.Policy,
			EpochLength:    cfg.EpochLength,
			TimeScale:      cfg.TimeScale,
			CandidatePaths: cfg.CandidatePaths,
			Partitions:     cfg.Partitions,
			Shard:          name,
			Logger:         cfg.Logger,
			Logf:           cfg.Logf,
		}
		if cfg.WALDir != "" {
			scfg.WALDir = filepath.Join(cfg.WALDir, name)
			scfg.SnapshotInterval = cfg.SnapshotInterval
		}
		srv, err := server.New(scfg)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("cluster: starting %s: %w", name, err)
		}
		sh := &localShard{name: name, scfg: scfg, srv: srv, handler: srv.Handler()}
		sh.ts = httptest.NewServer(http.HandlerFunc(sh.serve))
		l.shards = append(l.shards, sh)
		if err := l.Gateway.AddBackend(name, sh.ts.URL); err != nil {
			l.Close()
			return nil, err
		}
	}
	l.gatewayHandler = l.Gateway.Handler()
	l.http = httptest.NewServer(http.HandlerFunc(l.serveGateway))
	if cfg.Monitor != nil {
		mcfg := *cfg.Monitor
		mcfg.DiscoverURL = l.http.URL
		if mcfg.Logger == nil {
			if cfg.Logger != nil {
				mcfg.Logger = cfg.Logger
			} else if cfg.Logf != nil {
				mcfg.Logger = telemetry.LogfLogger(cfg.Logf)
			}
		}
		m, err := monitor.New(mcfg)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("cluster: starting monitor: %w", err)
		}
		l.Monitor = m
		l.monitorHTTP = httptest.NewServer(m.Handler())
	}
	return l, nil
}

// serveGateway forwards to whichever gateway incarnation currently fronts
// the cluster.
func (l *Local) serveGateway(w http.ResponseWriter, r *http.Request) {
	l.gmu.Lock()
	h := l.gatewayHandler
	l.gmu.Unlock()
	h.ServeHTTP(w, r)
}

// URL is the gateway's base URL.
func (l *Local) URL() string { return l.http.URL }

// MonitorURL is the embedded monitor's base URL ("" without a monitor).
func (l *Local) MonitorURL() string {
	if l.monitorHTTP == nil {
		return ""
	}
	return l.monitorHTTP.URL
}

// Client returns a fresh typed client against the gateway.
func (l *Local) Client() *server.Client { return server.NewClient(l.URL()) }

// NumShards returns the configured shard count.
func (l *Local) NumShards() int { return len(l.shards) }

// ShardURL is shard i's base URL — what the gateway's backend client dials,
// exposed so tests can hit a shard's own HTTP surface (metrics, traces)
// directly.
func (l *Local) ShardURL(i int) string { return l.shards[i].ts.URL }

// Kill simulates a crash of shard i: its scheduler stops, every coflow it
// owned is lost, and its listener answers 503 until Revive. The gateway's
// health loop will eject it and re-admit its in-flight coflows elsewhere.
func (l *Local) Kill(i int) {
	sh := l.shards[i]
	sh.mu.Lock()
	old := sh.srv
	sh.srv, sh.handler, sh.down = nil, nil, true
	sh.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// CrashKill stops shard i the way SIGKILL would: the scheduler dies with no
// drain and no final WAL fsync, and the listener answers 503 until Restart.
// Without a WALDir this is equivalent to Kill.
func (l *Local) CrashKill(i int) {
	sh := l.shards[i]
	sh.mu.Lock()
	old := sh.srv
	sh.srv, sh.handler, sh.down = nil, nil, true
	sh.mu.Unlock()
	if old != nil {
		old.Kill()
	}
}

// Restart boots shard i again at the same URL against its original config.
// With a WALDir the new daemon recovers the old one's coflows from its log
// before serving; without one it comes back empty (Revive's historical
// behavior — the two are aliases).
func (l *Local) Restart(i int) error { return l.Revive(i) }

// Revive restarts shard i at the same URL — the crashed process coming back.
// The daemon is fresh and empty unless the cluster runs with a WALDir, in
// which case it recovers its pre-crash state first. The gateway re-admits it
// to the placement rotation at its next successful probe.
func (l *Local) Revive(i int) error {
	sh := l.shards[i]
	srv, err := server.New(sh.scfg)
	if err != nil {
		return fmt.Errorf("cluster: reviving %s: %w", sh.name, err)
	}
	sh.mu.Lock()
	sh.srv, sh.handler, sh.down = srv, srv.Handler(), false
	sh.mu.Unlock()
	return nil
}

// RestartGateway crash-kills the gateway and boots a replacement from the
// persisted routing state, re-registering every shard listener. The cluster
// URL stays the same; callers should re-read l.Gateway afterwards. Requires a
// durable gateway (LocalConfig.WALDir or Gateway.StateDir).
func (l *Local) RestartGateway() error {
	if l.cfg.Gateway.StateDir == "" {
		return fmt.Errorf("cluster: restarting the gateway needs a persistent Gateway.StateDir")
	}
	l.Gateway.Kill()
	g, err := New(l.cfg.Gateway)
	if err != nil {
		return fmt.Errorf("cluster: restarting gateway: %w", err)
	}
	for _, sh := range l.shards {
		if err := g.AddBackend(sh.name, sh.ts.URL); err != nil {
			g.Close()
			return fmt.Errorf("cluster: re-registering %s: %w", sh.name, err)
		}
	}
	l.gmu.Lock()
	l.Gateway = g
	l.gatewayHandler = g.Handler()
	l.gmu.Unlock()
	return nil
}

// Shard returns shard i's live server (nil while killed), for direct state
// inspection in tests and benchmarks.
func (l *Local) Shard(i int) *server.Server {
	sh := l.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.srv
}

// DrainAll drains every live shard in parallel (each runs its in-flight
// coflows to completion in simulated time, decoupled from the wall clock)
// and returns the merged statistics. The parallel drain is the wall-clock
// win sharding buys: each shard drains only its own fabric.
func (l *Local) DrainAll() (online.EngineStats, error) {
	type result struct {
		st  online.EngineStats
		err error
	}
	results := make([]result, len(l.shards))
	var wg sync.WaitGroup
	for i, sh := range l.shards {
		sh.mu.Lock()
		srv := sh.srv
		sh.mu.Unlock()
		if srv == nil {
			continue
		}
		wg.Add(1)
		go func(i int, srv *server.Server) {
			defer wg.Done()
			results[i].st, results[i].err = srv.Drain()
		}(i, srv)
	}
	wg.Wait()
	var parts []online.EngineStats
	for i, r := range results {
		if r.err != nil {
			return online.EngineStats{}, fmt.Errorf("cluster: draining shard%d: %w", i, r.err)
		}
		parts = append(parts, r.st)
	}
	return online.MergeEngineStats(parts...), nil
}

// Close tears the whole cluster down, monitor first (it scrapes the rest).
func (l *Local) Close() {
	if l.monitorHTTP != nil {
		l.monitorHTTP.Close()
	}
	if l.Monitor != nil {
		l.Monitor.Close()
	}
	if l.http != nil {
		l.http.Close()
	}
	if l.Gateway != nil {
		l.Gateway.Close()
	}
	for _, sh := range l.shards {
		if sh.ts != nil {
			sh.ts.Close()
		}
		sh.mu.Lock()
		srv := sh.srv
		sh.srv = nil
		sh.mu.Unlock()
		if srv != nil {
			srv.Close()
		}
	}
}
