package cluster

import (
	"net/http"

	"coflowsched/internal/telemetry"
)

// gateMetrics is coflowgate's registry surface. Gateway-level routing and
// health counters live here under coflowgate_*; shard-internal scheduling
// metrics stay on the shards' own /metrics (labelled via coflowd -shard).
// Request counters, retry counts and the admit histogram are instrumented
// live; the roster mirrors are refreshed at scrape time (see handleMetrics).
type gateMetrics struct {
	reg *telemetry.Registry

	up              *telemetry.Gauge
	coflows         *telemetry.Counter
	completed       *telemetry.Counter
	readmits        *telemetry.Counter
	backends        *telemetry.Gauge
	backendsHealthy *telemetry.Gauge
	requests        *telemetry.Counter
	requestErrors   *telemetry.Counter
	backendUp       *telemetry.GaugeVec
	backendOut      *telemetry.GaugeVec
	backendEject    *telemetry.CounterVec
	clientRetries   *telemetry.CounterVec
	admitSeconds    *telemetry.Histogram
	traceSpans      *telemetry.Counter
	walRecords      *telemetry.Counter
	walFsyncs       *telemetry.Counter
	walRecovered    *telemetry.Gauge
	snapshots       *telemetry.Counter
}

func newGateMetrics() *gateMetrics {
	reg := telemetry.NewRegistry()
	m := &gateMetrics{
		reg:             reg,
		up:              reg.Gauge("coflowgate_up", "1 while the gateway serves"),
		coflows:         reg.Counter("coflowgate_coflows_total", "gateway coflow ids assigned"),
		completed:       reg.Counter("coflowgate_completed_total", "coflows observed complete through the gateway"),
		readmits:        reg.Counter("coflowgate_readmits_total", "post-ejection re-admissions"),
		backends:        reg.Gauge("coflowgate_backends", "registered backends"),
		backendsHealthy: reg.Gauge("coflowgate_backends_healthy", "backends currently in the placement rotation"),
		requests:        reg.Counter("coflowgate_http_requests_total", "HTTP requests served"),
		requestErrors:   reg.Counter("coflowgate_http_request_errors_total", "HTTP requests answered with a 4xx/5xx status"),
		backendUp:       reg.GaugeVec("coflowgate_backend_up", "1 while the labelled backend is healthy", "shard"),
		backendOut:      reg.GaugeVec("coflowgate_backend_outstanding", "coflows placed on the labelled backend and not yet observed complete", "shard"),
		backendEject:    reg.CounterVec("coflowgate_backend_ejections_total", "health ejections of the labelled backend", "shard"),
		clientRetries:   reg.CounterVec("coflowgate_client_retries_total", "backend requests retried after a transient failure", "endpoint"),
		admitSeconds:    reg.Histogram("coflowgate_admit_seconds", "gateway admission latency (queue wait + shard round trip)", nil),
		traceSpans:      reg.Counter("coflowgate_trace_spans_total", "lifecycle trace spans recorded"),
		walRecords:      reg.Counter("coflowgate_wal_records_total", "records appended to the gateway write-ahead log"),
		walFsyncs:       reg.Counter("coflowgate_wal_fsyncs_total", "group commits fsynced to the gateway write-ahead log"),
		walRecovered:    reg.Gauge("coflowgate_wal_recovered_coflows", "in-flight coflows restored from snapshot + WAL at the last boot"),
		snapshots:       reg.Counter("coflowgate_snapshots_total", "gateway state snapshots written"),
	}
	telemetry.RegisterRuntimeCollector(reg)
	m.up.Set(1)
	return m
}

// updateRoster refreshes the scrape-time mirrors of the gateway counters and
// the per-backend roster.
func (m *gateMetrics) updateRoster(c Counters, roster []BackendStatus) {
	m.coflows.Set(float64(c.Coflows))
	m.completed.Set(float64(c.Completed))
	m.readmits.Set(float64(c.Readmits))
	m.backends.Set(float64(c.Backends))
	m.backendsHealthy.Set(float64(c.Healthy))
	for _, bs := range roster {
		up := 0.0
		if bs.Healthy {
			up = 1
		}
		m.backendUp.With(bs.Name).Set(up)
		m.backendOut.With(bs.Name).Set(float64(bs.Outstanding))
		m.backendEject.With(bs.Name).Set(float64(bs.Ejections))
	}
}

// handleMetrics serves the gateway's Prometheus text exposition from the
// shared telemetry registry — the same code path coflowd uses.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g.metrics.updateRoster(g.CountersSnapshot(), g.Backends())
	spans, _ := g.tracer.Totals()
	g.metrics.traceSpans.Set(float64(spans))
	if g.wal != nil {
		appends, syncs := g.wal.Stats()
		g.metrics.walRecords.Set(float64(appends))
		g.metrics.walFsyncs.Set(float64(syncs))
	}
	g.metrics.walRecovered.Set(float64(g.recovered))
	g.metrics.reg.Handler().ServeHTTP(w, r)
}
