package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/server"
	"coflowsched/internal/stats"
	"coflowsched/internal/telemetry"
)

// The gateway serves the same /v1/* JSON API as a single coflowd, so every
// existing client — coflowload, the typed server.Client, the closed-loop
// tests — can point at a cluster without changes. Responses reuse the server
// package's wire types; gateway-only endpoints (/v1/backends) and fields are
// additive.

// gateHealthResponse is GET /healthz: the server.HealthResponse shape plus
// cluster fields.
type gateHealthResponse struct {
	Status   string  `json:"status"`
	Policy   string  `json:"policy"`
	Now      float64 `json:"now"`
	Admitted int     `json:"admitted"`
	Backends int     `json:"backends"`
	Healthy  int     `json:"healthy_backends"`
}

// gateStatsResponse is GET /v1/stats: the merged server.StatsResponse plus
// the per-shard detail.
type gateStatsResponse struct {
	server.StatsResponse
	GatewayCompleted int         `json:"gateway_completed"`
	Readmits         int         `json:"readmits"`
	Shards           []ShardStat `json:"shards"`
}

// Handler returns the gateway's HTTP API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/coflows", g.handleAdmit)
	mux.HandleFunc("GET /v1/coflows/{id}", g.handleCoflow)
	mux.HandleFunc("GET /v1/schedule", g.handleSchedule)
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("GET /v1/epochs", g.handleEpochs)
	mux.HandleFunc("GET /v1/network", g.handleNetwork)
	mux.HandleFunc("GET /v1/backends", g.handleBackends)
	mux.HandleFunc("GET /healthz", g.handleHealth)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.Handle("GET /debug/traces", g.tracer.Handler())
	server.RegisterPprof(mux)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &server.StatusRecorder{ResponseWriter: w, Code: http.StatusOK}
		mux.ServeHTTP(rec, r)
		g.metrics.requests.Inc()
		if rec.Code >= 400 {
			g.metrics.requestErrors.Inc()
		}
	})
}

func (g *Gateway) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var cf coflow.Coflow
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, server.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cf); err != nil {
		server.RespondError(w, http.StatusBadRequest, "decoding coflow: "+err.Error())
		return
	}
	resp, err := g.AdmitTraced(cf, r.Header.Get(telemetry.TraceHeader))
	switch {
	case err == nil:
		// The gateway coflow id doubles as the retry-dedupe handle on the
		// shards, echoed the same way coflowd echoes its idempotency keys.
		w.Header().Set(server.IdemHeader, strconv.Itoa(resp.ID))
		server.RespondJSON(w, http.StatusCreated, resp)
	case errors.Is(err, errClosed), errors.Is(err, errNoBackend), errors.Is(err, errDurable):
		server.RespondError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, errNoFlows):
		server.RespondError(w, http.StatusBadRequest, err.Error())
	default:
		var apiErr *server.APIError
		if errors.As(err, &apiErr) && terminalStatus(apiErr.StatusCode) {
			// The shard's validation verdict passes through as our own.
			server.RespondError(w, apiErr.StatusCode, apiErr.Message)
			return
		}
		server.RespondError(w, http.StatusBadGateway, err.Error())
	}
}

func (g *Gateway) handleCoflow(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		server.RespondError(w, http.StatusBadRequest, "invalid coflow id")
		return
	}
	st, found, err := g.Status(id)
	switch {
	case !found:
		server.RespondError(w, http.StatusNotFound, "unknown coflow id")
	case err != nil:
		server.RespondError(w, http.StatusBadGateway, "shard unreachable: "+err.Error())
	default:
		server.RespondJSON(w, http.StatusOK, st)
	}
}

func (g *Gateway) handleSchedule(w http.ResponseWriter, r *http.Request) {
	resp, err := g.MergedSchedule()
	if err != nil {
		server.RespondError(w, http.StatusBadGateway, err.Error())
		return
	}
	server.RespondJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	merged, shards := g.MergedStats()
	counters := g.CountersSnapshot()
	pct := func(xs []float64, p float64) float64 { return stats.PercentileOr(xs, p, 0) }
	resp := gateStatsResponse{
		StatsResponse: server.StatsResponse{
			Now:              merged.Now,
			Policy:           g.shardPolicyName(shards),
			Epochs:           merged.Epochs,
			Decisions:        merged.Decisions,
			Admitted:         merged.Admitted,
			Completed:        merged.Completed,
			Active:           merged.Active,
			ActiveFlows:      merged.ActiveFlows,
			WeightedCCT:      merged.WeightedCCT,
			WeightedResponse: merged.WeightedResponse,
			SlowdownP50:      pct(merged.Slowdowns, 50),
			SlowdownP95:      pct(merged.Slowdowns, 95),
			SlowdownP99:      pct(merged.Slowdowns, 99),
			SolveMsP50:       pct(merged.SolveLatencies, 50) * 1e3,
			SolveMsP95:       pct(merged.SolveLatencies, 95) * 1e3,
			SolveMsP99:       pct(merged.SolveLatencies, 99) * 1e3,
		},
		GatewayCompleted: counters.Completed,
		Readmits:         counters.Readmits,
		Shards:           shards,
	}
	if r.URL.Query().Get("samples") != "" {
		resp.Slowdowns = merged.Slowdowns
		resp.SolveLatencies = merged.SolveLatencies
	}
	server.RespondJSON(w, http.StatusOK, resp)
}

// shardPolicyName reports the shards' policy (they are homogeneous by
// construction; the first reporting shard's answer wins).
func (g *Gateway) shardPolicyName(shards []ShardStat) string {
	for _, s := range shards {
		if s.Stats != nil && s.Stats.Policy != "" {
			return s.Stats.Policy
		}
	}
	return ""
}

func (g *Gateway) handleNetwork(w http.ResponseWriter, r *http.Request) {
	net, err := g.Network()
	if err != nil {
		server.RespondError(w, http.StatusBadGateway, err.Error())
		return
	}
	server.RespondJSON(w, http.StatusOK, net)
}

func (g *Gateway) handleBackends(w http.ResponseWriter, r *http.Request) {
	server.RespondJSON(w, http.StatusOK, g.Backends())
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	c := g.CountersSnapshot()
	resp := gateHealthResponse{
		Status:   "ok",
		Policy:   "gateway(" + g.PlacementName() + ")",
		Now:      time.Since(g.start).Seconds(),
		Admitted: c.Coflows,
		Backends: c.Backends,
		Healthy:  c.Healthy,
	}
	if c.Healthy == 0 {
		resp.Status = "degraded"
		server.RespondJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	server.RespondJSON(w, http.StatusOK, resp)
}

// ShardEpochs is one backend's contribution to GET /v1/epochs.
type ShardEpochs struct {
	Name string `json:"name"`
	Err  string `json:"error,omitempty"`
	server.EpochsResponse
}

// gateEpochsResponse is GET /v1/epochs on the gateway: every healthy shard's
// recent-epoch ring, side by side. Shards run independent schedulers, so the
// rings are reported per shard rather than merged — a slowdown tail usually
// lives on one shard, and this view is how you find which.
type gateEpochsResponse struct {
	Shards []ShardEpochs `json:"shards"`
}

// handleEpochs scatter-gathers /v1/epochs?n= from every healthy backend.
func (g *Gateway) handleEpochs(w http.ResponseWriter, r *http.Request) {
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			server.RespondError(w, http.StatusBadRequest, "invalid n")
			return
		}
		n = v
	}
	g.mu.Lock()
	backends := g.healthyLocked(nil)
	g.mu.Unlock()
	resp := gateEpochsResponse{Shards: make([]ShardEpochs, len(backends))}
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			resp.Shards[i].Name = b.name
			ep, err := b.client.Epochs(n)
			if err != nil {
				resp.Shards[i].Err = err.Error()
				return
			}
			resp.Shards[i].EpochsResponse = ep
		}(i, b)
	}
	wg.Wait()
	server.RespondJSON(w, http.StatusOK, resp)
}
