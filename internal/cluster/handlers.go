package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/server"
	"coflowsched/internal/stats"
)

// The gateway serves the same /v1/* JSON API as a single coflowd, so every
// existing client — coflowload, the typed server.Client, the closed-loop
// tests — can point at a cluster without changes. Responses reuse the server
// package's wire types; gateway-only endpoints (/v1/backends) and fields are
// additive.

// gateHealthResponse is GET /healthz: the server.HealthResponse shape plus
// cluster fields.
type gateHealthResponse struct {
	Status   string  `json:"status"`
	Policy   string  `json:"policy"`
	Now      float64 `json:"now"`
	Admitted int     `json:"admitted"`
	Backends int     `json:"backends"`
	Healthy  int     `json:"healthy_backends"`
}

// gateStatsResponse is GET /v1/stats: the merged server.StatsResponse plus
// the per-shard detail.
type gateStatsResponse struct {
	server.StatsResponse
	GatewayCompleted int         `json:"gateway_completed"`
	Readmits         int         `json:"readmits"`
	Shards           []ShardStat `json:"shards"`
}

// Handler returns the gateway's HTTP API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/coflows", g.handleAdmit)
	mux.HandleFunc("GET /v1/coflows/{id}", g.handleCoflow)
	mux.HandleFunc("GET /v1/schedule", g.handleSchedule)
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("GET /v1/network", g.handleNetwork)
	mux.HandleFunc("GET /v1/backends", g.handleBackends)
	mux.HandleFunc("GET /healthz", g.handleHealth)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &server.StatusRecorder{ResponseWriter: w, Code: http.StatusOK}
		mux.ServeHTTP(rec, r)
		g.requests.Add(1)
		if rec.Code >= 400 {
			g.requestErrors.Add(1)
		}
	})
}

func (g *Gateway) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var cf coflow.Coflow
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, server.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cf); err != nil {
		server.RespondError(w, http.StatusBadRequest, "decoding coflow: "+err.Error())
		return
	}
	resp, err := g.Admit(cf)
	switch {
	case err == nil:
		server.RespondJSON(w, http.StatusCreated, resp)
	case errors.Is(err, errClosed), errors.Is(err, errNoBackend):
		server.RespondError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, errNoFlows):
		server.RespondError(w, http.StatusBadRequest, err.Error())
	default:
		var apiErr *server.APIError
		if errors.As(err, &apiErr) && terminalStatus(apiErr.StatusCode) {
			// The shard's validation verdict passes through as our own.
			server.RespondError(w, apiErr.StatusCode, apiErr.Message)
			return
		}
		server.RespondError(w, http.StatusBadGateway, err.Error())
	}
}

func (g *Gateway) handleCoflow(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		server.RespondError(w, http.StatusBadRequest, "invalid coflow id")
		return
	}
	st, found, err := g.Status(id)
	switch {
	case !found:
		server.RespondError(w, http.StatusNotFound, "unknown coflow id")
	case err != nil:
		server.RespondError(w, http.StatusBadGateway, "shard unreachable: "+err.Error())
	default:
		server.RespondJSON(w, http.StatusOK, st)
	}
}

func (g *Gateway) handleSchedule(w http.ResponseWriter, r *http.Request) {
	resp, err := g.MergedSchedule()
	if err != nil {
		server.RespondError(w, http.StatusBadGateway, err.Error())
		return
	}
	server.RespondJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	merged, shards := g.MergedStats()
	counters := g.CountersSnapshot()
	pct := func(xs []float64, p float64) float64 { return stats.PercentileOr(xs, p, 0) }
	resp := gateStatsResponse{
		StatsResponse: server.StatsResponse{
			Now:              merged.Now,
			Policy:           g.shardPolicyName(shards),
			Epochs:           merged.Epochs,
			Decisions:        merged.Decisions,
			Admitted:         merged.Admitted,
			Completed:        merged.Completed,
			Active:           merged.Active,
			ActiveFlows:      merged.ActiveFlows,
			WeightedCCT:      merged.WeightedCCT,
			WeightedResponse: merged.WeightedResponse,
			SlowdownP50:      pct(merged.Slowdowns, 50),
			SlowdownP95:      pct(merged.Slowdowns, 95),
			SlowdownP99:      pct(merged.Slowdowns, 99),
			SolveMsP50:       pct(merged.SolveLatencies, 50) * 1e3,
			SolveMsP95:       pct(merged.SolveLatencies, 95) * 1e3,
			SolveMsP99:       pct(merged.SolveLatencies, 99) * 1e3,
		},
		GatewayCompleted: counters.Completed,
		Readmits:         counters.Readmits,
		Shards:           shards,
	}
	if r.URL.Query().Get("samples") != "" {
		resp.Slowdowns = merged.Slowdowns
		resp.SolveLatencies = merged.SolveLatencies
	}
	server.RespondJSON(w, http.StatusOK, resp)
}

// shardPolicyName reports the shards' policy (they are homogeneous by
// construction; the first reporting shard's answer wins).
func (g *Gateway) shardPolicyName(shards []ShardStat) string {
	for _, s := range shards {
		if s.Stats != nil && s.Stats.Policy != "" {
			return s.Stats.Policy
		}
	}
	return ""
}

func (g *Gateway) handleNetwork(w http.ResponseWriter, r *http.Request) {
	net, err := g.Network()
	if err != nil {
		server.RespondError(w, http.StatusBadGateway, err.Error())
		return
	}
	server.RespondJSON(w, http.StatusOK, net)
}

func (g *Gateway) handleBackends(w http.ResponseWriter, r *http.Request) {
	server.RespondJSON(w, http.StatusOK, g.Backends())
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	c := g.CountersSnapshot()
	resp := gateHealthResponse{
		Status:   "ok",
		Policy:   "gateway(" + g.PlacementName() + ")",
		Now:      time.Since(g.start).Seconds(),
		Admitted: c.Coflows,
		Backends: c.Backends,
		Healthy:  c.Healthy,
	}
	if c.Healthy == 0 {
		resp.Status = "degraded"
		server.RespondJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	server.RespondJSON(w, http.StatusOK, resp)
}

// handleMetrics serves gateway-level Prometheus-style text metrics: routing
// and health counters under coflowgate_*, one labelled per-backend series
// per shard. Shard-internal scheduling metrics stay on the shards' own
// /metrics (labelled via coflowd -shard).
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := g.CountersSnapshot()
	roster := g.Backends()
	var b strings.Builder
	line := func(name string, v float64) { fmt.Fprintf(&b, "%s %g\n", name, v) }
	line("coflowgate_up", 1)
	line("coflowgate_coflows_total", float64(c.Coflows))
	line("coflowgate_completed_total", float64(c.Completed))
	line("coflowgate_readmits_total", float64(c.Readmits))
	line("coflowgate_backends", float64(c.Backends))
	line("coflowgate_backends_healthy", float64(c.Healthy))
	line("coflowgate_http_requests_total", float64(g.requests.Load()))
	line("coflowgate_http_request_errors_total", float64(g.requestErrors.Load()))
	for _, bs := range roster {
		up := 0.0
		if bs.Healthy {
			up = 1
		}
		fmt.Fprintf(&b, "coflowgate_backend_up{shard=%q} %g\n", bs.Name, up)
		fmt.Fprintf(&b, "coflowgate_backend_outstanding{shard=%q} %g\n", bs.Name, float64(bs.Outstanding))
		fmt.Fprintf(&b, "coflowgate_backend_ejections_total{shard=%q} %g\n", bs.Name, float64(bs.Ejections))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
