package workload

import (
	"strings"
	"testing"

	"coflowsched/internal/graph"
)

const tinyTrace = `# comment
coflow,arrival_ms,mappers,reducers,weight
late,1000,0;1,2:100;3:50,2
early,0,4,0:10
`

func TestParseTrace(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(tinyTrace))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(tr.Records))
	}
	// Sorted by arrival: "early" first despite file order.
	if tr.Records[0].ID != "early" || tr.Records[1].ID != "late" {
		t.Errorf("records not sorted by arrival: %q, %q", tr.Records[0].ID, tr.Records[1].ID)
	}
	early := tr.Records[0]
	if early.ArrivalMS != 0 || len(early.Mappers) != 1 || early.Mappers[0] != 4 {
		t.Errorf("early record parsed wrong: %+v", early)
	}
	if early.Weight != 1 {
		t.Errorf("missing weight column should default to 1, got %v", early.Weight)
	}
	late := tr.Records[1]
	if late.Weight != 2 {
		t.Errorf("late weight = %v, want 2", late.Weight)
	}
	if len(late.Reducers) != 2 || late.Reducers[0] != 2 || late.ReducerMB[0] != 100 {
		t.Errorf("late reducers parsed wrong: %v %v", late.Reducers, late.ReducerMB)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"too few fields":   "c1,0,1\n",
		"bad arrival":      "c1,xyz,0,1:5\n",
		"negative arrival": "c1,-3,0,1:5\n",
		"bad mapper":       "c1,0,a;b,1:5\n",
		"empty mappers":    "c1,0,;,1:5\n",
		"bad reducer pair": "c1,0,0,1\n",
		"zero megabytes":   "c1,0,0,1:0\n",
		"bad weight":       "c1,0,0,1:5,nope\n",
		"huge slot":        "c1,0,9999999999,1:5\n",
	}
	for name, in := range cases {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
}

func TestParseTraceErrorLineNumbers(t *testing.T) {
	// Comments and blank lines are skipped by the CSV reader, so naive
	// record counting would report "line 2" here; the error must point at
	// the real file line of the malformed record.
	in := "# comment\n\nc1,0,0,1:5\nc2,bad,0,1:5\n"
	_, err := ParseTrace(strings.NewReader(in))
	if err == nil {
		t.Fatalf("want error for malformed arrival")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %q should reference file line 4", err)
	}
}

func TestTraceInstance(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(tinyTrace))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	g := graph.Star(6, 1)
	inst, arrivals, err := tr.Instance(g, TraceConfig{})
	if err != nil {
		t.Fatalf("Instance: %v", err)
	}
	if err := inst.Validate(false); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	if len(arrivals) != len(inst.Coflows) {
		t.Fatalf("%d arrivals for %d coflows", len(arrivals), len(inst.Coflows))
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Errorf("arrivals decrease at %d: %v < %v", i, arrivals[i], arrivals[i-1])
		}
	}
	// "late" (arrival 1000ms, default TimeUnit 0.001) must release at 1.0.
	lateIdx := -1
	for i, cf := range inst.Coflows {
		if cf.Name == "late" {
			lateIdx = i
		}
	}
	if lateIdx < 0 {
		t.Fatalf("coflow 'late' missing from instance")
	}
	if got := arrivals[lateIdx]; got != 1.0 {
		t.Errorf("late arrival = %v, want 1.0", got)
	}
	// 2 mappers x 2 reducers = 4 flows (star hosts are all distinct slots
	// here, so nothing is rack-local); each flow carries MB/2 * SizeUnit.
	late := inst.Coflows[lateIdx]
	if len(late.Flows) != 4 {
		t.Fatalf("late has %d flows, want 4", len(late.Flows))
	}
	wantSizes := map[float64]int{100.0 / 2 * 0.01: 2, 50.0 / 2 * 0.01: 2}
	gotSizes := map[float64]int{}
	for _, f := range late.Flows {
		gotSizes[f.Size]++
	}
	for size, n := range wantSizes {
		if gotSizes[size] != n {
			t.Errorf("flow sizes %v, want %d flows of size %v", gotSizes, n, size)
		}
	}
}

func TestTraceInstanceLocalTransfers(t *testing.T) {
	// Two hosts: slots 0 and 2 collide (2 mod 2 = 0), so the mapper-reducer
	// pair is rack-local and the coflow must be dropped; a trace that is all
	// local maps to no transfers and errors.
	tr, err := ParseTrace(strings.NewReader("c1,0,0,2:10\n"))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if _, _, err := tr.Instance(graph.Line(2, 1), TraceConfig{}); err == nil {
		t.Fatalf("all-local trace should fail to build an instance")
	}
	// On 3 hosts the same trace is a real transfer (2 mod 3 = 2 != 0).
	inst, _, err := tr.Instance(graph.Line(3, 1), TraceConfig{})
	if err != nil {
		t.Fatalf("Instance on 3 hosts: %v", err)
	}
	if n := inst.NumFlows(); n != 1 {
		t.Errorf("got %d flows, want 1", n)
	}
}

func TestTraceInstanceMaxCoflows(t *testing.T) {
	tr, err := FBSampleTrace()
	if err != nil {
		t.Fatalf("FBSampleTrace: %v", err)
	}
	g := graph.Star(12, 1)
	full, _, err := tr.Instance(g, TraceConfig{})
	if err != nil {
		t.Fatalf("full Instance: %v", err)
	}
	capped, _, err := tr.Instance(g, TraceConfig{MaxCoflows: 3})
	if err != nil {
		t.Fatalf("capped Instance: %v", err)
	}
	if len(capped.Coflows) >= len(full.Coflows) || len(capped.Coflows) > 3 {
		t.Errorf("MaxCoflows(3): got %d coflows (full trace has %d)", len(capped.Coflows), len(full.Coflows))
	}
}
