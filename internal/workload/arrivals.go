package workload

import (
	"fmt"
	"math/rand"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// ArrivalConfig describes an online workload: the same per-coflow shape as
// Config, but coflows arrive over time following a Poisson process instead
// of all being (approximately) present at time zero. This is the input of
// the online scheduler (internal/online), which must make decisions without
// seeing future arrivals.
type ArrivalConfig struct {
	// Config gives the per-coflow shape (width, sizes, weights). Its
	// MeanRelease field is reinterpreted as intra-coflow jitter: each flow's
	// release is the coflow's arrival time plus a Poisson(MeanRelease) offset
	// (zero means all flows of a coflow are released together on arrival).
	Config
	// Rate is the mean number of coflow arrivals per unit of simulated time
	// (λ of the Poisson process). Inter-arrival times are exponential with
	// mean 1/Rate. Must be positive.
	Rate float64
}

// GenerateArrivals builds a random online instance: cfg.NumCoflows coflows
// whose arrival times form a Poisson process of rate cfg.Rate starting at
// time zero. Every flow of a coflow is released at the coflow's arrival time
// (plus optional jitter, see ArrivalConfig). The second return value lists
// each coflow's arrival time, index-aligned with Instance.Coflows.
func GenerateArrivals(g *graph.Graph, cfg ArrivalConfig, rng *rand.Rand) (*coflow.Instance, []float64, error) {
	if cfg.Rate <= 0 {
		return nil, nil, fmt.Errorf("workload: arrival rate must be positive, got %v", cfg.Rate)
	}
	inst, err := Generate(g, cfg.Config, rng)
	if err != nil {
		return nil, nil, err
	}
	// Overwrite the per-flow releases drawn by Generate with the arrival
	// process: arrival_i = arrival_{i-1} + Exp(1/Rate).
	arrivals := make([]float64, len(inst.Coflows))
	t := 0.0
	for i := range inst.Coflows {
		t += rng.ExpFloat64() / cfg.Rate
		arrivals[i] = t
		for j := range inst.Coflows[i].Flows {
			release := t
			if cfg.MeanRelease > 0 {
				release += float64(Poisson(rng, cfg.MeanRelease))
			}
			inst.Coflows[i].Flows[j].Release = release
		}
	}
	if err := inst.Validate(cfg.PacketModel); err != nil {
		return nil, nil, fmt.Errorf("workload: generated invalid online instance: %w", err)
	}
	return inst, arrivals, nil
}

// Arrivals recovers per-coflow arrival times from an instance: the earliest
// release among each coflow's flows. For instances produced by
// GenerateArrivals without jitter this is exactly the arrival process.
func Arrivals(inst *coflow.Instance) []float64 {
	out := make([]float64, len(inst.Coflows))
	for i, cf := range inst.Coflows {
		min := cf.Flows[0].Release
		for _, f := range cf.Flows[1:] {
			if f.Release < min {
				min = f.Release
			}
		}
		out[i] = min
	}
	return out
}
