package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// This file implements a parser for Facebook/Varys-style coflow traces, the
// workload format popularized by Chowdhury et al.'s Varys release (a Hive/
// MapReduce trace from a 3000-machine Facebook cluster): each record is one
// shuffle-stage coflow described by its arrival time, the racks its mappers
// and reducers are placed on, and the shuffle volume each reducer receives.
// We use a CSV rendering of that schema:
//
//	# comment lines and a "coflow,..." header are skipped
//	coflow,arrival_ms,mappers,reducers[,weight]
//	c1,0,0;1,2:100;3:50
//	c2,250,4,0:10,2.5
//
// where "mappers" is a ';'-separated list of mapper slot indices and
// "reducers" a ';'-separated list of "slot:megabytes" pairs. Slots are
// abstract placement indices (racks in the original trace); TraceConfig maps
// them onto the hosts of a concrete topology. Following Varys, the shuffle is
// a full bipartite mapper x reducer exchange with each reducer's volume split
// evenly across the mappers.

// TraceRecord is one parsed coflow: placement slots plus per-reducer shuffle
// volume in megabytes.
type TraceRecord struct {
	// ID is the trace's name for the coflow (informational).
	ID string
	// ArrivalMS is the coflow's arrival time in trace milliseconds.
	ArrivalMS float64
	// Mappers lists mapper slot indices; Reducers lists reducer slot indices,
	// index-aligned with ReducerMB (that reducer's total shuffle megabytes).
	Mappers   []int
	Reducers  []int
	ReducerMB []float64
	// Weight is the coflow's scheduling weight (1 when the column is absent).
	Weight float64
}

// Trace is a parsed coflow trace, sorted by arrival time.
type Trace struct {
	Records []TraceRecord
}

// maxTraceSlots bounds placement slot indices so a corrupt line cannot make
// Instance allocate per-slot state for an absurd index.
const maxTraceSlots = 1 << 20

// maxTraceFlows bounds the total flow expansion of a trace replay: each
// record contributes |mappers| x |reducers| flows, so a few kilobytes of
// hostile slot lists can otherwise expand quadratically into millions of
// flows (found by FuzzParseTrace). Real traces are nowhere near this.
const maxTraceFlows = 1 << 20

// ParseTrace reads a Varys-style CSV coflow trace. Comment lines (leading
// '#') and a header line whose first field is "coflow" are skipped. Records
// are returned sorted by arrival time (stable, so same-arrival records keep
// file order). Malformed lines are errors, never panics — this is a fuzz
// target.
func ParseTrace(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // weight column is optional
	cr.Comment = '#'
	cr.TrimLeadingSpace = true
	tr := &Trace{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// csv.ParseError already carries the real file position.
			return nil, fmt.Errorf("workload: trace: %w", err)
		}
		// The record ordinal is not the file line (comments and blanks are
		// skipped inside Read); FieldPos reports the true position.
		line, _ := cr.FieldPos(0)
		if len(rec) == 1 && strings.TrimSpace(rec[0]) == "" {
			continue
		}
		if strings.EqualFold(strings.TrimSpace(rec[0]), "coflow") {
			continue // header
		}
		if len(rec) < 4 || len(rec) > 5 {
			return nil, fmt.Errorf("workload: trace line %d: want 4 or 5 fields (coflow,arrival_ms,mappers,reducers[,weight]), got %d", line, len(rec))
		}
		t := TraceRecord{ID: strings.TrimSpace(rec[0]), Weight: 1}
		if t.ArrivalMS, err = parseTraceFloat(rec[1], "arrival_ms", false); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if t.Mappers, err = parseSlots(rec[2]); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: mappers: %w", line, err)
		}
		if t.Reducers, t.ReducerMB, err = parseReducers(rec[3]); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: reducers: %w", line, err)
		}
		if len(rec) == 5 {
			if t.Weight, err = parseTraceFloat(rec[4], "weight", true); err != nil {
				return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
			}
		}
		tr.Records = append(tr.Records, t)
	}
	if len(tr.Records) == 0 {
		return nil, fmt.Errorf("workload: trace has no records")
	}
	sort.SliceStable(tr.Records, func(i, j int) bool {
		return tr.Records[i].ArrivalMS < tr.Records[j].ArrivalMS
	})
	return tr, nil
}

// ParseTraceFile opens and parses a trace file.
func ParseTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseTrace(f)
}

// parseTraceFloat parses a nonnegative finite float field; positive requires
// it to be strictly positive.
func parseTraceFloat(s, field string, positive bool) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("%s %q: %v", field, s, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || (positive && v == 0) {
		return 0, fmt.Errorf("%s %v out of range", field, v)
	}
	return v, nil
}

// parseSlots parses a ';'-separated list of slot indices.
func parseSlots(s string) ([]int, error) {
	parts := strings.Split(s, ";")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("slot %q: %v", p, err)
		}
		if v < 0 || v >= maxTraceSlots {
			return nil, fmt.Errorf("slot %d out of range [0, %d)", v, maxTraceSlots)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty slot list %q", s)
	}
	return out, nil
}

// parseReducers parses a ';'-separated list of "slot:megabytes" pairs.
func parseReducers(s string) ([]int, []float64, error) {
	parts := strings.Split(s, ";")
	slots := make([]int, 0, len(parts))
	mb := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		slot, vol, ok := strings.Cut(p, ":")
		if !ok {
			return nil, nil, fmt.Errorf("reducer %q: want slot:megabytes", p)
		}
		sv, err := strconv.Atoi(strings.TrimSpace(slot))
		if err != nil {
			return nil, nil, fmt.Errorf("reducer slot %q: %v", slot, err)
		}
		if sv < 0 || sv >= maxTraceSlots {
			return nil, nil, fmt.Errorf("reducer slot %d out of range [0, %d)", sv, maxTraceSlots)
		}
		v, err := parseTraceFloat(vol, "megabytes", true)
		if err != nil {
			return nil, nil, err
		}
		slots = append(slots, sv)
		mb = append(mb, v)
	}
	if len(slots) == 0 {
		return nil, nil, fmt.Errorf("empty reducer list %q", s)
	}
	return slots, mb, nil
}

// TraceConfig controls how abstract trace slots and units map onto a concrete
// simulation topology.
type TraceConfig struct {
	// TimeUnit is the number of simulated time units per trace millisecond
	// (default 0.001: one simulated unit per trace second).
	TimeUnit float64
	// SizeUnit is the simulated volume per trace megabyte (default 0.01: a
	// 100 MB shuffle is one second of exclusive unit-capacity link use,
	// keeping replayed instances on the same scale as the synthetic ones).
	SizeUnit float64
	// MaxCoflows truncates the replay to the first n coflows by arrival
	// (0 = all).
	MaxCoflows int
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.TimeUnit <= 0 {
		c.TimeUnit = 0.001
	}
	if c.SizeUnit <= 0 {
		c.SizeUnit = 0.01
	}
	return c
}

// Instance realizes the trace on a topology: slot i maps onto host
// hosts[i mod len(hosts)], each coflow becomes the full bipartite mapper x
// reducer shuffle with reducer volume split evenly across mappers, and
// arrival times become flow release times. Mapper-reducer pairs that land on
// the same host (a rack-local transfer) are skipped; coflows whose transfers
// are all local are dropped. The returned arrivals are index-aligned with the
// instance's coflows and non-decreasing.
func (t *Trace) Instance(g *graph.Graph, cfg TraceConfig) (*coflow.Instance, []float64, error) {
	cfg = cfg.withDefaults()
	hosts := g.Hosts()
	if len(hosts) < 2 {
		return nil, nil, fmt.Errorf("workload: trace replay needs at least 2 hosts, topology has %d", len(hosts))
	}
	records := t.Records
	if cfg.MaxCoflows > 0 && cfg.MaxCoflows < len(records) {
		records = records[:cfg.MaxCoflows]
	}
	inst := &coflow.Instance{Network: g}
	var arrivals []float64
	totalFlows := 0
	for _, rec := range records {
		totalFlows += len(rec.Mappers) * len(rec.Reducers)
		if totalFlows > maxTraceFlows {
			return nil, nil, fmt.Errorf("workload: trace expands to more than %d flows", maxTraceFlows)
		}
		arrival := rec.ArrivalMS * cfg.TimeUnit
		cf := coflow.Coflow{Name: rec.ID, Weight: rec.Weight}
		if cf.Name == "" {
			cf.Name = fmt.Sprintf("trace-%d", len(inst.Coflows))
		}
		if len(rec.Reducers) != len(rec.ReducerMB) {
			return nil, nil, fmt.Errorf("workload: trace coflow %s: %d reducers but %d volumes", rec.ID, len(rec.Reducers), len(rec.ReducerMB))
		}
		for ri, rslot := range rec.Reducers {
			size := rec.ReducerMB[ri] * cfg.SizeUnit / float64(len(rec.Mappers))
			dst := hosts[rslot%len(hosts)]
			for _, mslot := range rec.Mappers {
				src := hosts[mslot%len(hosts)]
				if src == dst {
					continue // rack-local transfer: no network volume
				}
				cf.Flows = append(cf.Flows, coflow.Flow{
					Source:  src,
					Dest:    dst,
					Size:    size,
					Release: arrival,
				})
			}
		}
		if len(cf.Flows) == 0 {
			continue // entirely rack-local coflow
		}
		inst.Coflows = append(inst.Coflows, cf)
		arrivals = append(arrivals, arrival)
	}
	if len(inst.Coflows) == 0 {
		return nil, nil, fmt.Errorf("workload: trace maps to no network transfers on %d hosts", len(hosts))
	}
	if err := inst.Validate(false); err != nil {
		return nil, nil, fmt.Errorf("workload: trace instance invalid: %w", err)
	}
	return inst, arrivals, nil
}
