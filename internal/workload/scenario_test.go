package workload

import (
	"math/rand"
	"reflect"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	want := []string{"diurnal", "fan-in", "fan-out", "fb-trace", "heavy-tail", "incast", "uniform"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in scenario %q not registered (have %v)", w, names)
		}
	}
	if _, ok := LookupScenario("uniform"); !ok {
		t.Errorf("LookupScenario(uniform) failed")
	}
	if _, ok := LookupScenario("no-such-scenario"); ok {
		t.Errorf("LookupScenario invented a scenario")
	}
}

func TestRegisterScenarioRejectsBadInput(t *testing.T) {
	if err := RegisterScenario(Scenario{Name: ""}); err == nil {
		t.Errorf("empty name accepted")
	}
	if err := RegisterScenario(Scenario{Name: "x"}); err == nil {
		t.Errorf("scenario without topology/generator accepted")
	}
	if err := RegisterScenario(Scenario{
		Name:     "uniform", // duplicate of a built-in
		Topology: func() *graph.Graph { return graph.Star(2, 1) },
		Generate: func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return nil, nil, nil
		},
	}); err == nil {
		t.Errorf("duplicate name accepted")
	}
}

// TestScenarioBuildDeterministic is the property the golden-file harness
// rests on: building a scenario twice yields byte-identical instances.
func TestScenarioBuildDeterministic(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			inst1, arr1, err := s.Build()
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			inst2, arr2, err := s.Build()
			if err != nil {
				t.Fatalf("Build (second): %v", err)
			}
			if !reflect.DeepEqual(inst1.Coflows, inst2.Coflows) {
				t.Errorf("two builds produced different coflows")
			}
			if !reflect.DeepEqual(arr1, arr2) {
				t.Errorf("two builds produced different arrivals")
			}
		})
	}
}

// TestScenarioBuildValid runs the generator property contract over every
// registered scenario (including any future registrations that pick up this
// suite for free).
func TestScenarioBuildValid(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			inst, arrivals, err := s.Build()
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if err := inst.Validate(false); err != nil {
				t.Fatalf("invalid instance: %v", err)
			}
			if len(inst.Coflows) == 0 {
				t.Fatalf("scenario built an empty instance")
			}
			if len(arrivals) != len(inst.Coflows) {
				t.Fatalf("%d arrivals for %d coflows", len(arrivals), len(inst.Coflows))
			}
			hosts := map[graph.NodeID]bool{}
			for _, h := range inst.Network.Hosts() {
				hosts[h] = true
			}
			for i := 1; i < len(arrivals); i++ {
				if arrivals[i] < arrivals[i-1] {
					t.Fatalf("arrivals decrease at %d", i)
				}
			}
			for i, cf := range inst.Coflows {
				for j, f := range cf.Flows {
					if !hosts[f.Source] || !hosts[f.Dest] {
						t.Fatalf("coflow %d flow %d endpoints are not hosts", i, j)
					}
					if f.Release < arrivals[i] {
						t.Fatalf("coflow %d flow %d releases before its arrival", i, j)
					}
				}
			}
		})
	}
}

func TestFBSampleTrace(t *testing.T) {
	tr, err := FBSampleTrace()
	if err != nil {
		t.Fatalf("FBSampleTrace: %v", err)
	}
	if len(tr.Records) < 10 {
		t.Errorf("sample trace has only %d records", len(tr.Records))
	}
}
