package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// This file adds the structured workload shapes the uniform Poisson
// generator (Generate/GenerateArrivals) cannot express: heavy-tailed flow
// sizes, skewed fan-in/fan-out communication patterns, incast bursts and
// time-varying arrival rates. Production coflow traces are dominated by
// exactly these shapes (Varys/Aalo report >50% of bytes in <5% of coflows),
// so scheduling results on uniform workloads alone overstate how easy the
// problem is.
//
// Every generator returns (instance, arrivals, error) with arrivals
// index-aligned to the instance's coflows and non-decreasing, the contract
// the scenario registry and the online engine rely on.

// Pareto draws from a bounded Pareto distribution with shape alpha and
// support [xm, xmax] via inverse transform sampling. Smaller alpha means a
// heavier tail; alpha in (1, 2) gives finite mean but infinite variance, the
// regime datacenter flow sizes are usually fitted to.
func Pareto(rng *rand.Rand, alpha, xm, xmax float64) float64 {
	if alpha <= 0 || xm <= 0 || xmax <= xm {
		return xm
	}
	// Invert the truncated CDF: u uniform in [0,1) maps to
	// xm / (1 - u*(1-(xm/xmax)^alpha))^(1/alpha).
	u := rng.Float64()
	ratio := math.Pow(xm/xmax, alpha)
	x := xm / math.Pow(1-u*(1-ratio), 1/alpha)
	if x > xmax {
		x = xmax // guard float roundoff at u -> 1
	}
	return x
}

// HeavyTailConfig parameterizes GenerateHeavyTail: Poisson coflow arrivals
// whose flow sizes follow a bounded Pareto distribution instead of the
// near-uniform Poisson sizes of Generate.
type HeavyTailConfig struct {
	// NumCoflows and Width shape the instance (defaults 10 and 4).
	NumCoflows int
	Width      int
	// Rate is the mean coflow arrival rate (default 1).
	Rate float64
	// Alpha is the Pareto shape (default 1.5: finite mean, infinite
	// variance). MinSize and MaxSize bound the support (defaults 1 and 1000).
	Alpha   float64
	MinSize float64
	MaxSize float64
	// MeanWeight, when positive, draws Poisson(MeanWeight)+1 coflow weights.
	MeanWeight float64
}

func (c HeavyTailConfig) withDefaults() HeavyTailConfig {
	if c.NumCoflows <= 0 {
		c.NumCoflows = 10
	}
	if c.Width <= 0 {
		c.Width = 4
	}
	if c.Rate <= 0 {
		c.Rate = 1
	}
	if c.Alpha <= 0 {
		c.Alpha = 1.5
	}
	if c.MinSize <= 0 {
		c.MinSize = 1
	}
	if c.MaxSize <= c.MinSize {
		c.MaxSize = 1000 * c.MinSize
	}
	return c
}

// GenerateHeavyTail builds a Poisson arrival stream of coflows with bounded
// Pareto flow sizes: most coflows are small, a few are elephants that
// dominate total bytes. All flows of a coflow share one size draw, matching
// the per-coflow (not per-flow) skew of the Facebook trace.
func GenerateHeavyTail(g *graph.Graph, cfg HeavyTailConfig, rng *rand.Rand) (*coflow.Instance, []float64, error) {
	cfg = cfg.withDefaults()
	hosts := g.Hosts()
	if len(hosts) < 2 {
		return nil, nil, fmt.Errorf("workload: network has %d hosts, need at least 2", len(hosts))
	}
	inst := &coflow.Instance{Network: g}
	arrivals := make([]float64, cfg.NumCoflows)
	t := 0.0
	for i := 0; i < cfg.NumCoflows; i++ {
		t += rng.ExpFloat64() / cfg.Rate
		arrivals[i] = t
		weight := 1.0
		if cfg.MeanWeight > 0 {
			weight = float64(Poisson(rng, cfg.MeanWeight) + 1)
		}
		size := Pareto(rng, cfg.Alpha, cfg.MinSize, cfg.MaxSize)
		cf := coflow.Coflow{Name: fmt.Sprintf("heavytail-%d", i), Weight: weight}
		for j := 0; j < cfg.Width; j++ {
			src, dst := distinctHosts(hosts, rng)
			cf.Flows = append(cf.Flows, coflow.Flow{Source: src, Dest: dst, Size: size, Release: t})
		}
		inst.Coflows = append(inst.Coflows, cf)
	}
	if err := inst.Validate(false); err != nil {
		return nil, nil, fmt.Errorf("workload: generated invalid heavy-tail instance: %w", err)
	}
	return inst, arrivals, nil
}

// SkewConfig parameterizes GenerateSkewed: coflows whose flows concentrate on
// one aggregation endpoint — the shuffle (fan-in, many sources to one
// reducer) and broadcast (fan-out, one source to many destinations) patterns
// of data-parallel frameworks.
type SkewConfig struct {
	// NumCoflows is the number of coflows (default 10).
	NumCoflows int
	// FanIn > 0 builds FanIn-to-1 coflows; FanOut > 0 builds 1-to-FanOut
	// coflows. Exactly one must be positive (defaults: FanIn 4 when both are
	// zero). Fan degrees are capped at len(hosts)-1.
	FanIn  int
	FanOut int
	// Rate is the mean coflow arrival rate (default 1).
	Rate float64
	// MeanSize is the mean Poisson per-flow size (default 4, shifted +1).
	MeanSize float64
	// MeanWeight, when positive, draws Poisson(MeanWeight)+1 coflow weights.
	MeanWeight float64
}

func (c SkewConfig) withDefaults() SkewConfig {
	if c.NumCoflows <= 0 {
		c.NumCoflows = 10
	}
	if c.FanIn <= 0 && c.FanOut <= 0 {
		c.FanIn = 4
	}
	if c.Rate <= 0 {
		c.Rate = 1
	}
	if c.MeanSize <= 0 {
		c.MeanSize = 4
	}
	return c
}

// GenerateSkewed builds a Poisson arrival stream of fan-in (shuffle
// aggregation) or fan-out (broadcast) coflows. Each coflow picks a random
// pivot host; fan-in coflows send from FanIn distinct other hosts into the
// pivot, fan-out coflows send from the pivot to FanOut distinct other hosts.
// The pivot's access link is the structural bottleneck — the situation where
// coflow-aware ordering matters most.
func GenerateSkewed(g *graph.Graph, cfg SkewConfig, rng *rand.Rand) (*coflow.Instance, []float64, error) {
	cfg = cfg.withDefaults()
	if cfg.FanIn > 0 && cfg.FanOut > 0 {
		return nil, nil, fmt.Errorf("workload: skewed generator wants fan-in or fan-out, not both")
	}
	hosts := g.Hosts()
	if len(hosts) < 2 {
		return nil, nil, fmt.Errorf("workload: network has %d hosts, need at least 2", len(hosts))
	}
	degree := cfg.FanIn
	if cfg.FanOut > 0 {
		degree = cfg.FanOut
	}
	if degree > len(hosts)-1 {
		degree = len(hosts) - 1
	}
	inst := &coflow.Instance{Network: g}
	arrivals := make([]float64, cfg.NumCoflows)
	t := 0.0
	for i := 0; i < cfg.NumCoflows; i++ {
		t += rng.ExpFloat64() / cfg.Rate
		arrivals[i] = t
		weight := 1.0
		if cfg.MeanWeight > 0 {
			weight = float64(Poisson(rng, cfg.MeanWeight) + 1)
		}
		pivot := hosts[rng.Intn(len(hosts))]
		peers := samplePeers(hosts, pivot, degree, rng)
		name := fmt.Sprintf("fanin-%d", i)
		if cfg.FanOut > 0 {
			name = fmt.Sprintf("fanout-%d", i)
		}
		cf := coflow.Coflow{Name: name, Weight: weight}
		for _, p := range peers {
			size := float64(Poisson(rng, cfg.MeanSize) + 1)
			f := coflow.Flow{Source: p, Dest: pivot, Size: size, Release: t}
			if cfg.FanOut > 0 {
				f.Source, f.Dest = pivot, p
			}
			cf.Flows = append(cf.Flows, f)
		}
		inst.Coflows = append(inst.Coflows, cf)
	}
	if err := inst.Validate(false); err != nil {
		return nil, nil, fmt.Errorf("workload: generated invalid skewed instance: %w", err)
	}
	return inst, arrivals, nil
}

// IncastConfig parameterizes GenerateIncast: bursts of coflows arriving
// near-simultaneously, all converging on a single destination.
type IncastConfig struct {
	// Bursts is the number of incast waves (default 3); BurstSize the coflows
	// per wave (default 4).
	Bursts    int
	BurstSize int
	// FanIn is the number of senders per coflow (default 4, capped at
	// len(hosts)-1).
	FanIn int
	// Gap is the idle time between waves (default 8); Jitter the maximum
	// uniform arrival offset within a wave (default Gap/10).
	Gap    float64
	Jitter float64
	// MeanSize is the mean Poisson per-flow size (default 2, shifted +1):
	// incast is many small transfers, not elephants.
	MeanSize float64
}

func (c IncastConfig) withDefaults() IncastConfig {
	if c.Bursts <= 0 {
		c.Bursts = 3
	}
	if c.BurstSize <= 0 {
		c.BurstSize = 4
	}
	if c.FanIn <= 0 {
		c.FanIn = 4
	}
	if c.Gap <= 0 {
		c.Gap = 8
	}
	if c.Jitter <= 0 {
		c.Jitter = c.Gap / 10
	}
	if c.MeanSize <= 0 {
		c.MeanSize = 2
	}
	return c
}

// GenerateIncast builds Bursts waves of BurstSize coflows each. All coflows
// of a wave arrive within Jitter of the wave start and aggregate into the
// same destination host (a fresh random victim per wave), overloading its
// access link — the partition/aggregate incast pattern of web serving and
// distributed storage.
func GenerateIncast(g *graph.Graph, cfg IncastConfig, rng *rand.Rand) (*coflow.Instance, []float64, error) {
	cfg = cfg.withDefaults()
	hosts := g.Hosts()
	if len(hosts) < 2 {
		return nil, nil, fmt.Errorf("workload: network has %d hosts, need at least 2", len(hosts))
	}
	fanIn := cfg.FanIn
	if fanIn > len(hosts)-1 {
		fanIn = len(hosts) - 1
	}
	inst := &coflow.Instance{Network: g}
	var arrivals []float64
	for b := 0; b < cfg.Bursts; b++ {
		waveStart := float64(b) * cfg.Gap
		victim := hosts[rng.Intn(len(hosts))]
		// Draw the wave's arrival offsets and sort so arrivals stay
		// non-decreasing across the whole instance.
		offsets := make([]float64, cfg.BurstSize)
		for i := range offsets {
			offsets[i] = rng.Float64() * cfg.Jitter
		}
		sort.Float64s(offsets)
		for i, off := range offsets {
			t := waveStart + off
			senders := samplePeers(hosts, victim, fanIn, rng)
			cf := coflow.Coflow{Name: fmt.Sprintf("incast-%d-%d", b, i), Weight: 1}
			for _, s := range senders {
				size := float64(Poisson(rng, cfg.MeanSize) + 1)
				cf.Flows = append(cf.Flows, coflow.Flow{Source: s, Dest: victim, Size: size, Release: t})
			}
			inst.Coflows = append(inst.Coflows, cf)
			arrivals = append(arrivals, t)
		}
	}
	if err := inst.Validate(false); err != nil {
		return nil, nil, fmt.Errorf("workload: generated invalid incast instance: %w", err)
	}
	return inst, arrivals, nil
}

// DiurnalConfig parameterizes GenerateDiurnal: a non-homogeneous Poisson
// arrival process whose rate swings sinusoidally between BaseRate and
// PeakRate with the given Period — the compressed day/night cycle every
// production cluster sees.
type DiurnalConfig struct {
	// NumCoflows is the number of coflows (default 12).
	NumCoflows int
	// Width is the number of flows per coflow (default 3).
	Width int
	// BaseRate and PeakRate bound the arrival rate (defaults 0.5 and 4).
	BaseRate float64
	PeakRate float64
	// Period is the modulation period in simulated time (default 10).
	Period float64
	// MeanSize is the mean Poisson per-flow size (default 4, shifted +1).
	MeanSize float64
}

func (c DiurnalConfig) withDefaults() DiurnalConfig {
	if c.NumCoflows <= 0 {
		c.NumCoflows = 12
	}
	if c.Width <= 0 {
		c.Width = 3
	}
	if c.BaseRate <= 0 {
		c.BaseRate = 0.5
	}
	if c.PeakRate < c.BaseRate {
		c.PeakRate = 8 * c.BaseRate
	}
	if c.Period <= 0 {
		c.Period = 10
	}
	if c.MeanSize <= 0 {
		c.MeanSize = 4
	}
	return c
}

// GenerateDiurnal builds a non-homogeneous Poisson arrival stream by Lewis-
// Shedler thinning: candidate arrivals are drawn at the peak rate and kept
// with probability rate(t)/PeakRate, where rate(t) swings sinusoidally
// between BaseRate and PeakRate. The result alternates quiet valleys with
// arrival storms, stressing how quickly a policy sheds queue built up at the
// peak.
func GenerateDiurnal(g *graph.Graph, cfg DiurnalConfig, rng *rand.Rand) (*coflow.Instance, []float64, error) {
	cfg = cfg.withDefaults()
	hosts := g.Hosts()
	if len(hosts) < 2 {
		return nil, nil, fmt.Errorf("workload: network has %d hosts, need at least 2", len(hosts))
	}
	rate := func(t float64) float64 {
		phase := (1 + math.Sin(2*math.Pi*t/cfg.Period)) / 2
		return cfg.BaseRate + (cfg.PeakRate-cfg.BaseRate)*phase
	}
	inst := &coflow.Instance{Network: g}
	arrivals := make([]float64, cfg.NumCoflows)
	t := 0.0
	for i := 0; i < cfg.NumCoflows; i++ {
		for { // thinning: propose at PeakRate, accept at rate(t)/PeakRate
			t += rng.ExpFloat64() / cfg.PeakRate
			if rng.Float64()*cfg.PeakRate <= rate(t) {
				break
			}
		}
		arrivals[i] = t
		cf := coflow.Coflow{Name: fmt.Sprintf("diurnal-%d", i), Weight: 1}
		for j := 0; j < cfg.Width; j++ {
			src, dst := distinctHosts(hosts, rng)
			size := float64(Poisson(rng, cfg.MeanSize) + 1)
			cf.Flows = append(cf.Flows, coflow.Flow{Source: src, Dest: dst, Size: size, Release: t})
		}
		inst.Coflows = append(inst.Coflows, cf)
	}
	if err := inst.Validate(false); err != nil {
		return nil, nil, fmt.Errorf("workload: generated invalid diurnal instance: %w", err)
	}
	return inst, arrivals, nil
}

// distinctHosts draws a uniform random (source, destination) pair of
// distinct hosts.
func distinctHosts(hosts []graph.NodeID, rng *rand.Rand) (graph.NodeID, graph.NodeID) {
	src := hosts[rng.Intn(len(hosts))]
	dst := hosts[rng.Intn(len(hosts))]
	for dst == src {
		dst = hosts[rng.Intn(len(hosts))]
	}
	return src, dst
}

// samplePeers draws n distinct hosts excluding the pivot, uniformly without
// replacement. n must be at most len(hosts)-1.
func samplePeers(hosts []graph.NodeID, pivot graph.NodeID, n int, rng *rand.Rand) []graph.NodeID {
	pool := make([]graph.NodeID, 0, len(hosts)-1)
	for _, h := range hosts {
		if h != pivot {
			pool = append(pool, h)
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool[:n]
}
