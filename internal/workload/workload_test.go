package workload

import (
	"math"
	"math/rand"
	"testing"

	"coflowsched/internal/graph"
)

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mean := range []float64{0.5, 2, 8, 40} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(Poisson(rng, mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > 0.15*mean+0.1 {
			t.Errorf("Poisson(%v): empirical mean %v", mean, got)
		}
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -1) != 0 {
		t.Errorf("Poisson with non-positive mean should be 0")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	g := graph.FatTree(4, 1)
	rng := rand.New(rand.NewSource(7))
	inst, err := Generate(g, Config{NumCoflows: 5, Width: 8, MeanSize: 3, MeanRelease: 2, MeanWeight: 1}, rng)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(inst.Coflows) != 5 {
		t.Fatalf("coflows = %d, want 5", len(inst.Coflows))
	}
	for i, cf := range inst.Coflows {
		if len(cf.Flows) != 8 {
			t.Errorf("coflow %d width = %d, want 8", i, len(cf.Flows))
		}
		if cf.Weight < 1 {
			t.Errorf("coflow %d weight = %v, want >= 1", i, cf.Weight)
		}
		for j, f := range cf.Flows {
			if f.Size < 1 {
				t.Errorf("flow %d.%d size %v < 1", i, j, f.Size)
			}
			if f.Source == f.Dest {
				t.Errorf("flow %d.%d has identical endpoints", i, j)
			}
			if g.Node(f.Source).Kind != graph.KindHost || g.Node(f.Dest).Kind != graph.KindHost {
				t.Errorf("flow %d.%d endpoints are not hosts", i, j)
			}
			if f.Release < 0 {
				t.Errorf("flow %d.%d release %v < 0", i, j, f.Release)
			}
		}
	}
	if err := inst.Validate(false); err != nil {
		t.Errorf("generated instance invalid: %v", err)
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	g := graph.FatTree(4, 1)
	gen := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		inst, err := Generate(g, Config{NumCoflows: 3, Width: 4, MeanSize: 5, MeanRelease: 1, MeanWeight: 2}, rng)
		if err != nil {
			t.Fatal(err)
		}
		var sizes []float64
		for _, cf := range inst.Coflows {
			for _, f := range cf.Flows {
				sizes = append(sizes, f.Size, float64(f.Source), float64(f.Dest), f.Release)
			}
		}
		return sizes
	}
	a, b := gen(11), gen(11)
	c := gen(12)
	same := len(a) == len(b)
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if !same {
		t.Errorf("same seed should generate identical instances")
	}
	diff := false
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Errorf("different seeds should generate different instances")
	}
}

func TestGenerateDefaultsAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Defaults kick in for zero values.
	inst, err := Generate(graph.FatTree(4, 1), Config{}, rng)
	if err != nil {
		t.Fatalf("Generate with defaults: %v", err)
	}
	if len(inst.Coflows) != 10 || len(inst.Coflows[0].Flows) != 16 {
		t.Errorf("defaults not applied: %d coflows width %d", len(inst.Coflows), len(inst.Coflows[0].Flows))
	}
	// Not enough hosts.
	single := graph.New()
	single.AddNode("only", graph.KindHost)
	if _, err := Generate(single, Config{}, rng); err == nil {
		t.Error("expected error for single-host network")
	}
}

func TestGeneratePacketModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst, err := Generate(graph.Grid(3, 3, 1), Config{NumCoflows: 4, Width: 3, PacketModel: true}, rng)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, cf := range inst.Coflows {
		for _, f := range cf.Flows {
			if f.Size != 1 {
				t.Errorf("packet model flow size = %v, want 1", f.Size)
			}
		}
	}
	if err := inst.Validate(true); err != nil {
		t.Errorf("packet instance invalid: %v", err)
	}
}

func TestGenerateWithPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst, err := GenerateWithPaths(graph.FatTree(4, 1), Config{NumCoflows: 3, Width: 5}, rng)
	if err != nil {
		t.Fatalf("GenerateWithPaths: %v", err)
	}
	if !inst.HasPaths() {
		t.Errorf("paths not assigned")
	}
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		if err := f.Path.Validate(inst.Network, f.Source, f.Dest); err != nil {
			t.Errorf("flow %s: %v", ref, err)
		}
	}
}
