// Package workload generates random coflow scheduling instances following
// the paper's evaluation methodology (§4.1): coflow instances are drawn at
// random with flow release times, flow sizes and coflow weights based on
// Poisson distributions, over a datacenter topology whose hosts serve as
// sources and destinations.
//
// All randomness is derived from an explicit *rand.Rand, so experiments are
// reproducible given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// Config describes a random coflow workload.
type Config struct {
	// NumCoflows is the number of coflows to generate.
	NumCoflows int
	// Width is the number of flows per coflow (the paper's "coflow width").
	Width int
	// MeanSize is the mean of the Poisson distribution for flow sizes. Sizes
	// are shifted by +1 so no flow is empty. The paper's 1 Gb/s links make a
	// unit of size correspond to one second of exclusive link use.
	MeanSize float64
	// MeanRelease is the mean of the Poisson distribution from which each
	// flow's release time is drawn. Zero means all flows are released at 0.
	MeanRelease float64
	// MeanWeight is the mean of the Poisson distribution for coflow weights.
	// Weights are shifted by +1 so every coflow matters. Zero gives all
	// coflows weight 1.
	MeanWeight float64
	// PacketModel, when true, forces every flow size to 1 (packets).
	PacketModel bool
}

// withDefaults fills in unset values.
func (c Config) withDefaults() Config {
	if c.NumCoflows <= 0 {
		c.NumCoflows = 10
	}
	if c.Width <= 0 {
		c.Width = 16
	}
	if c.MeanSize <= 0 {
		c.MeanSize = 4
	}
	if c.MeanWeight < 0 {
		c.MeanWeight = 0
	}
	if c.MeanRelease < 0 {
		c.MeanRelease = 0
	}
	return c
}

// Poisson draws a Poisson-distributed integer with the given mean using
// Knuth's algorithm (adequate for the small means used in experiments).
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation for large means keeps the loop bounded.
		v := rng.NormFloat64()*math.Sqrt(mean) + mean
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Generate builds a random instance on the given network. Sources and
// destinations are sampled uniformly at random from the network's hosts
// (distinct per flow). Generate returns an error if the network has fewer
// than two hosts.
func Generate(g *graph.Graph, cfg Config, rng *rand.Rand) (*coflow.Instance, error) {
	cfg = cfg.withDefaults()
	hosts := g.Hosts()
	if len(hosts) < 2 {
		return nil, fmt.Errorf("workload: network has %d hosts, need at least 2", len(hosts))
	}
	inst := &coflow.Instance{Network: g}
	for i := 0; i < cfg.NumCoflows; i++ {
		weight := 1.0
		if cfg.MeanWeight > 0 {
			weight = float64(Poisson(rng, cfg.MeanWeight) + 1)
		}
		cf := coflow.Coflow{Name: fmt.Sprintf("coflow-%d", i), Weight: weight}
		for j := 0; j < cfg.Width; j++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			size := 1.0
			if !cfg.PacketModel {
				size = float64(Poisson(rng, cfg.MeanSize) + 1)
			}
			release := 0.0
			if cfg.MeanRelease > 0 {
				release = float64(Poisson(rng, cfg.MeanRelease))
			}
			cf.Flows = append(cf.Flows, coflow.Flow{
				Source:  src,
				Dest:    dst,
				Size:    size,
				Release: release,
			})
		}
		inst.Coflows = append(inst.Coflows, cf)
	}
	if err := inst.Validate(cfg.PacketModel); err != nil {
		return nil, fmt.Errorf("workload: generated invalid instance: %w", err)
	}
	return inst, nil
}

// GenerateWithPaths is Generate followed by shortest-path assignment, for the
// "paths given" problem variants.
func GenerateWithPaths(g *graph.Graph, cfg Config, rng *rand.Rand) (*coflow.Instance, error) {
	inst, err := Generate(g, cfg, rng)
	if err != nil {
		return nil, err
	}
	if err := inst.AssignShortestPaths(); err != nil {
		return nil, err
	}
	return inst, nil
}
