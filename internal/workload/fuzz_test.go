package workload

import (
	"bytes"
	"testing"

	"coflowsched/internal/graph"
)

// FuzzParseTrace hammers the trace parser with arbitrary bytes: it must
// either return an error or a structurally sound trace — never panic — and
// any trace it accepts must map onto a topology without panicking either.
func FuzzParseTrace(f *testing.F) {
	f.Add([]byte(tinyTrace))
	f.Add([]byte(fbSampleTrace))
	f.Add([]byte("c1,0,0;1,2:5.5;3:1,2\n"))
	f.Add([]byte("coflow,arrival_ms,mappers,reducers\nx,12.5,7,0:1\n"))
	f.Add([]byte("# only a comment\n"))
	f.Add([]byte("c1,1e308,0,1:1e308\n"))
	f.Add([]byte(",,,\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		if len(tr.Records) == 0 {
			t.Fatalf("accepted trace with zero records")
		}
		for i, r := range tr.Records {
			if len(r.Mappers) == 0 || len(r.Reducers) == 0 {
				t.Fatalf("record %d accepted with empty placement", i)
			}
			if len(r.Reducers) != len(r.ReducerMB) {
				t.Fatalf("record %d has %d reducers but %d volumes", i, len(r.Reducers), len(r.ReducerMB))
			}
			if r.ArrivalMS < 0 || r.Weight <= 0 {
				t.Fatalf("record %d accepted with arrival %v weight %v", i, r.ArrivalMS, r.Weight)
			}
			if i > 0 && r.ArrivalMS < tr.Records[i-1].ArrivalMS {
				t.Fatalf("records not sorted by arrival at %d", i)
			}
		}
		// Accepted traces must realize onto a topology cleanly: an error is
		// fine (e.g. all transfers rack-local), invalid instances are not.
		inst, arrivals, err := tr.Instance(graph.Star(4, 1), TraceConfig{})
		if err != nil {
			return
		}
		if err := inst.Validate(false); err != nil {
			t.Fatalf("trace produced invalid instance: %v", err)
		}
		for i := 1; i < len(arrivals); i++ {
			if arrivals[i] < arrivals[i-1] {
				t.Fatalf("instance arrivals decrease at %d", i)
			}
		}
	})
}
