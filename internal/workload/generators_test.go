package workload

import (
	"math"
	"math/rand"
	"testing"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

func TestParetoBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		x := Pareto(rng, 1.5, 2, 500)
		if x < 2 || x > 500 || math.IsNaN(x) {
			t.Fatalf("Pareto sample %v outside [2, 500]", x)
		}
	}
	// Degenerate parameters fall back to the minimum, never NaN/panic.
	if x := Pareto(rng, 0, 2, 500); x != 2 {
		t.Errorf("Pareto with alpha=0 = %v, want 2", x)
	}
	if x := Pareto(rng, 1.5, 2, 1); x != 2 {
		t.Errorf("Pareto with inverted support = %v, want 2", x)
	}
}

func TestParetoIsHeavyTailed(t *testing.T) {
	// With alpha=1.1 on [1, 1000] the top decile of draws should dominate
	// total mass — the elephant/mice split the generator exists to model.
	rng := rand.New(rand.NewSource(2))
	n := 5000
	xs := make([]float64, n)
	total := 0.0
	for i := range xs {
		xs[i] = Pareto(rng, 1.1, 1, 1000)
		total += xs[i]
	}
	big := 0.0
	for _, x := range xs {
		if x >= 10 {
			big += x
		}
	}
	if frac := big / total; frac < 0.5 {
		t.Errorf("draws >= 10x minimum carry %.2f of total mass, want >= 0.5 (not heavy-tailed)", frac)
	}
}

func TestGenerateSkewedShape(t *testing.T) {
	g := graph.FatTree(4, 1)
	rng := rand.New(rand.NewSource(3))
	inst, _, err := GenerateSkewed(g, SkewConfig{NumCoflows: 6, FanIn: 5, Rate: 1}, rng)
	if err != nil {
		t.Fatalf("GenerateSkewed fan-in: %v", err)
	}
	for i, cf := range inst.Coflows {
		if len(cf.Flows) != 5 {
			t.Errorf("coflow %d has %d flows, want 5", i, len(cf.Flows))
		}
		dst := cf.Flows[0].Dest
		seen := map[graph.NodeID]bool{}
		for _, f := range cf.Flows {
			if f.Dest != dst {
				t.Errorf("coflow %d: fan-in flows have different destinations", i)
			}
			if seen[f.Source] {
				t.Errorf("coflow %d: duplicate source %v", i, f.Source)
			}
			seen[f.Source] = true
		}
	}

	inst, _, err = GenerateSkewed(g, SkewConfig{NumCoflows: 6, FanOut: 5, Rate: 1}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatalf("GenerateSkewed fan-out: %v", err)
	}
	for i, cf := range inst.Coflows {
		src := cf.Flows[0].Source
		for _, f := range cf.Flows {
			if f.Source != src {
				t.Errorf("coflow %d: fan-out flows have different sources", i)
			}
		}
	}

	if _, _, err := GenerateSkewed(g, SkewConfig{FanIn: 2, FanOut: 2}, rng); err == nil {
		t.Errorf("want error when both FanIn and FanOut are set")
	}
}

func TestGenerateIncastShape(t *testing.T) {
	g := graph.Star(8, 1)
	cfg := IncastConfig{Bursts: 3, BurstSize: 4, FanIn: 5, Gap: 10, Jitter: 1}
	inst, arrivals, err := GenerateIncast(g, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("GenerateIncast: %v", err)
	}
	if len(inst.Coflows) != 12 {
		t.Fatalf("got %d coflows, want 3 bursts x 4", len(inst.Coflows))
	}
	for b := 0; b < 3; b++ {
		victim := inst.Coflows[b*4].Flows[0].Dest
		for i := b * 4; i < (b+1)*4; i++ {
			if got := arrivals[i]; got < float64(b)*10 || got > float64(b)*10+1 {
				t.Errorf("coflow %d arrival %v outside wave %d window", i, got, b)
			}
			for _, f := range inst.Coflows[i].Flows {
				if f.Dest != victim {
					t.Errorf("coflow %d flows do not converge on the wave victim", i)
				}
			}
		}
	}
}

func TestGenerateDiurnalRateVariation(t *testing.T) {
	// The sinusoidal process must actually modulate: inter-arrival gaps
	// should spread far more than a homogeneous process at the mean rate.
	g := graph.FatTree(4, 1)
	inst, arrivals, err := GenerateDiurnal(g, DiurnalConfig{
		NumCoflows: 200, Width: 1, BaseRate: 0.2, PeakRate: 10, Period: 20,
	}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatalf("GenerateDiurnal: %v", err)
	}
	if len(inst.Coflows) != 200 {
		t.Fatalf("got %d coflows", len(inst.Coflows))
	}
	var gaps []float64
	for i := 1; i < len(arrivals); i++ {
		gaps = append(gaps, arrivals[i]-arrivals[i-1])
	}
	minGap, maxGap := gaps[0], gaps[0]
	for _, d := range gaps {
		if d < minGap {
			minGap = d
		}
		if d > maxGap {
			maxGap = d
		}
	}
	if maxGap < 20*minGap {
		t.Errorf("gap spread max/min = %v/%v: no visible rate modulation", maxGap, minGap)
	}
}

// generatorCase adapts every generator to one signature for the shared
// property test below.
type generatorCase struct {
	name     string
	topology *graph.Graph
	generate func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error)
}

func generatorCases() []generatorCase {
	fat := graph.FatTree(4, 1)
	star := graph.Star(10, 1)
	return []generatorCase{
		{"arrivals", fat, func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return GenerateArrivals(g, ArrivalConfig{Config: Config{NumCoflows: 6, Width: 3}, Rate: 2}, rng)
		}},
		{"heavy-tail", fat, func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return GenerateHeavyTail(g, HeavyTailConfig{NumCoflows: 6, Width: 3, Rate: 1, Alpha: 1.2, MinSize: 1, MaxSize: 50}, rng)
		}},
		{"fan-in", fat, func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return GenerateSkewed(g, SkewConfig{NumCoflows: 5, FanIn: 6, Rate: 1}, rng)
		}},
		{"fan-out", star, func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return GenerateSkewed(g, SkewConfig{NumCoflows: 5, FanOut: 4, Rate: 1}, rng)
		}},
		{"incast", star, func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return GenerateIncast(g, IncastConfig{Bursts: 2, BurstSize: 3, FanIn: 4}, rng)
		}},
		{"diurnal", fat, func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return GenerateDiurnal(g, DiurnalConfig{NumCoflows: 8, Width: 2}, rng)
		}},
	}
}

// TestGeneratorProperties asserts the contract every generator must satisfy
// for every seed: a valid instance (positive volumes, endpoints inside the
// network — inst.Validate), endpoints that are hosts specifically (switches
// cannot source traffic), arrivals aligned with coflows and non-decreasing,
// and flow releases never before their coflow's arrival.
func TestGeneratorProperties(t *testing.T) {
	for _, tc := range generatorCases() {
		t.Run(tc.name, func(t *testing.T) {
			hosts := map[graph.NodeID]bool{}
			for _, h := range tc.topology.Hosts() {
				hosts[h] = true
			}
			for seed := int64(0); seed < 50; seed++ {
				inst, arrivals, err := tc.generate(tc.topology, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := inst.Validate(false); err != nil {
					t.Fatalf("seed %d: invalid instance: %v", seed, err)
				}
				if len(arrivals) != len(inst.Coflows) {
					t.Fatalf("seed %d: %d arrivals for %d coflows", seed, len(arrivals), len(inst.Coflows))
				}
				for i := 1; i < len(arrivals); i++ {
					if arrivals[i] < arrivals[i-1] {
						t.Fatalf("seed %d: arrivals decrease at %d: %v < %v", seed, i, arrivals[i], arrivals[i-1])
					}
				}
				for i, cf := range inst.Coflows {
					for j, f := range cf.Flows {
						if !hosts[f.Source] || !hosts[f.Dest] {
							t.Fatalf("seed %d: coflow %d flow %d endpoints %v->%v not hosts", seed, i, j, f.Source, f.Dest)
						}
						if f.Release < arrivals[i] {
							t.Fatalf("seed %d: coflow %d flow %d released at %v before arrival %v", seed, i, j, f.Release, arrivals[i])
						}
					}
				}
			}
		})
	}
}
