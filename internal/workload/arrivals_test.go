package workload

import (
	"math"
	"math/rand"
	"testing"

	"coflowsched/internal/graph"
)

func TestGenerateArrivals(t *testing.T) {
	g := graph.FatTree(4, 1)
	cfg := ArrivalConfig{
		Config: Config{NumCoflows: 200, Width: 2, MeanSize: 4},
		Rate:   2.0,
	}
	rng := rand.New(rand.NewSource(42))
	inst, arrivals, err := GenerateArrivals(g, cfg, rng)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(arrivals) != len(inst.Coflows) {
		t.Fatalf("got %d arrival times for %d coflows", len(arrivals), len(inst.Coflows))
	}
	prev := 0.0
	for i, a := range arrivals {
		if a <= prev {
			t.Fatalf("arrival %d = %v not strictly after %v", i, a, prev)
		}
		prev = a
		for j, f := range inst.Coflows[i].Flows {
			if f.Release != a {
				t.Fatalf("coflow %d flow %d released at %v, arrival %v (no jitter configured)", i, j, f.Release, a)
			}
		}
	}
	// Mean inter-arrival should be roughly 1/Rate over 200 samples.
	mean := arrivals[len(arrivals)-1] / float64(len(arrivals))
	if mean < 0.25 || mean > 1.0 {
		t.Errorf("mean inter-arrival %v implausible for rate 2.0", mean)
	}
	// Arrivals() recovers the process.
	rec := Arrivals(inst)
	for i := range rec {
		if math.Abs(rec[i]-arrivals[i]) > 1e-12 {
			t.Fatalf("Arrivals()[%d] = %v, want %v", i, rec[i], arrivals[i])
		}
	}
}

func TestGenerateArrivalsDeterminism(t *testing.T) {
	g := graph.FatTree(4, 1)
	cfg := ArrivalConfig{Config: Config{NumCoflows: 20, Width: 3, MeanSize: 4, MeanRelease: 1}, Rate: 1.5}
	a, arrA, err := GenerateArrivals(g, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	b, arrB, err := GenerateArrivals(g, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	for i := range arrA {
		if arrA[i] != arrB[i] {
			t.Fatalf("arrival %d differs across identical seeds: %v vs %v", i, arrA[i], arrB[i])
		}
	}
	for i := range a.Coflows {
		for j := range a.Coflows[i].Flows {
			fa, fb := a.Coflows[i].Flows[j], b.Coflows[i].Flows[j]
			if fa.Source != fb.Source || fa.Dest != fb.Dest || fa.Size != fb.Size || fa.Release != fb.Release {
				t.Fatalf("coflow %d flow %d differs across identical seeds", i, j)
			}
		}
	}
}

func TestGenerateArrivalsRejectsBadRate(t *testing.T) {
	g := graph.FatTree(4, 1)
	if _, _, err := GenerateArrivals(g, ArrivalConfig{Config: Config{NumCoflows: 2}}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatalf("zero rate accepted")
	}
}
