package workload

import (
	_ "embed"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
)

// A Scenario bundles everything needed to reproduce one evaluation workload:
// a topology, an arrival process and coflow mix (the Generate hook), and the
// seed that makes the draw deterministic. Scenarios are the unit the
// experiment sweep (internal/experiments), the CLIs (coflowgen -scenario,
// coflowbench -scenario, coflowload -scenario) and the golden-file
// regression harness (internal/regress) all operate on: the same name always
// denotes the same instance, so recorded scheduler outputs stay comparable
// across refactors.
type Scenario struct {
	// Name is the registry key (lowercase, hyphenated).
	Name string
	// Description is a one-line summary for catalogs and -list output.
	Description string
	// Seed drives the scenario's rng; fixed per scenario so Build is
	// deterministic.
	Seed int64
	// Topology constructs the network the workload runs on.
	Topology func() *graph.Graph
	// Generate draws the workload on the topology. The returned arrivals are
	// index-aligned with the instance's coflows and non-decreasing.
	Generate func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error)
}

// Build materializes the scenario: fresh topology, seeded rng, one draw.
// Calling Build twice yields identical instances.
func (s Scenario) Build() (*coflow.Instance, []float64, error) {
	if s.Topology == nil || s.Generate == nil {
		return nil, nil, fmt.Errorf("workload: scenario %q lacks a topology or generator", s.Name)
	}
	g := s.Topology()
	inst, arrivals, err := s.Generate(g, rand.New(rand.NewSource(s.Seed)))
	if err != nil {
		return nil, nil, fmt.Errorf("workload: scenario %q: %w", s.Name, err)
	}
	if len(arrivals) != len(inst.Coflows) {
		return nil, nil, fmt.Errorf("workload: scenario %q: %d arrivals for %d coflows", s.Name, len(arrivals), len(inst.Coflows))
	}
	return inst, arrivals, nil
}

var (
	scenarioMu  sync.Mutex
	scenarioReg = map[string]Scenario{}
)

// RegisterScenario adds a scenario to the registry. Names must be unique and
// non-empty.
func RegisterScenario(s Scenario) error {
	if strings.TrimSpace(s.Name) == "" {
		return fmt.Errorf("workload: scenario needs a name")
	}
	if s.Topology == nil || s.Generate == nil {
		return fmt.Errorf("workload: scenario %q lacks a topology or generator", s.Name)
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioReg[s.Name]; dup {
		return fmt.Errorf("workload: scenario %q already registered", s.Name)
	}
	scenarioReg[s.Name] = s
	return nil
}

// LookupScenario finds a registered scenario by name.
func LookupScenario(name string) (Scenario, bool) {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	s, ok := scenarioReg[name]
	return s, ok
}

// Scenarios lists all registered scenarios sorted by name.
func Scenarios() []Scenario {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	out := make([]Scenario, 0, len(scenarioReg))
	for _, s := range scenarioReg {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioNames lists registered scenario names, sorted.
func ScenarioNames() []string {
	ss := Scenarios()
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return names
}

// fbSampleTrace is the committed sample of the Facebook/Varys-style trace
// format backing the fb-trace scenario (and doubling as parser
// documentation).
//
//go:embed fb_sample_trace.csv
var fbSampleTrace string

// FBSampleTrace parses the embedded sample trace.
func FBSampleTrace() (*Trace, error) {
	return ParseTrace(strings.NewReader(fbSampleTrace))
}

// The built-in scenario catalog. Sizes are deliberately modest: every
// scenario is replayed through both the batch simulator and the incremental
// engine by the golden regression suite on every test run. EXPERIMENTS.md
// documents each entry's shape and paper relevance.
func init() {
	must := func(s Scenario) {
		if err := RegisterScenario(s); err != nil {
			panic(err)
		}
	}
	must(Scenario{
		Name:        "uniform",
		Description: "uniform Poisson arrivals and sizes on a k=4 fat-tree (the PR-1 baseline workload)",
		Seed:        1,
		Topology:    func() *graph.Graph { return graph.FatTree(4, 1) },
		Generate: func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return GenerateArrivals(g, ArrivalConfig{
				Config: Config{NumCoflows: 10, Width: 3, MeanSize: 4, MeanWeight: 1},
				Rate:   2,
			}, rng)
		},
	})
	must(Scenario{
		Name:        "heavy-tail",
		Description: "Pareto(alpha=1.3) coflow sizes on a k=4 fat-tree: a few elephants own most bytes",
		Seed:        2,
		Topology:    func() *graph.Graph { return graph.FatTree(4, 1) },
		Generate: func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return GenerateHeavyTail(g, HeavyTailConfig{
				NumCoflows: 10, Width: 3, Rate: 1,
				Alpha: 1.3, MinSize: 1, MaxSize: 100,
			}, rng)
		},
	})
	must(Scenario{
		Name:        "fan-in",
		Description: "5-to-1 shuffle aggregations on a k=4 fat-tree: the reducer's access link bottlenecks",
		Seed:        3,
		Topology:    func() *graph.Graph { return graph.FatTree(4, 1) },
		Generate: func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return GenerateSkewed(g, SkewConfig{NumCoflows: 8, FanIn: 5, Rate: 1, MeanSize: 3}, rng)
		},
	})
	must(Scenario{
		Name:        "fan-out",
		Description: "1-to-5 broadcasts on a k=4 fat-tree: the sender's access link bottlenecks",
		Seed:        4,
		Topology:    func() *graph.Graph { return graph.FatTree(4, 1) },
		Generate: func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return GenerateSkewed(g, SkewConfig{NumCoflows: 8, FanOut: 5, Rate: 1, MeanSize: 3}, rng)
		},
	})
	must(Scenario{
		Name:        "incast",
		Description: "synchronized 6-to-1 aggregation waves on a 12-host star: one victim link per wave",
		Seed:        5,
		Topology:    func() *graph.Graph { return graph.Star(12, 1) },
		Generate: func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return GenerateIncast(g, IncastConfig{Bursts: 3, BurstSize: 4, FanIn: 6, Gap: 10, MeanSize: 2}, rng)
		},
	})
	must(Scenario{
		Name:        "diurnal",
		Description: "sinusoidal arrival rate (0.25 to 4 per unit) on a k=4 fat-tree: valleys then storms",
		Seed:        6,
		Topology:    func() *graph.Graph { return graph.FatTree(4, 1) },
		Generate: func(g *graph.Graph, rng *rand.Rand) (*coflow.Instance, []float64, error) {
			return GenerateDiurnal(g, DiurnalConfig{
				NumCoflows: 12, Width: 3, BaseRate: 0.25, PeakRate: 4, Period: 12, MeanSize: 4,
			}, rng)
		},
	})
	must(Scenario{
		Name:        "fb-trace",
		Description: "committed Facebook/Varys-style trace sample replayed on a 12-host star (big-switch model)",
		Seed:        7,
		Topology:    func() *graph.Graph { return graph.Star(12, 1) },
		Generate: func(g *graph.Graph, _ *rand.Rand) (*coflow.Instance, []float64, error) {
			tr, err := FBSampleTrace()
			if err != nil {
				return nil, nil, err
			}
			return tr.Instance(g, TraceConfig{})
		},
	})
}
