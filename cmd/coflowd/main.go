// Command coflowd is the long-running coflow-scheduler daemon: it simulates
// a datacenter network in (scaled) real time, admits coflows over HTTP as
// they arrive, and re-prioritizes residual flows every epoch with the
// selected online policy (internal/server wraps internal/online).
//
//	coflowd -addr :8080 -policy sebf -epoch 2 -timescale 10
//
// Endpoints:
//
//	POST /v1/coflows       admit a coflow (JSON body: {"name","weight","flows":[{"source","dest","size"}]})
//	GET  /v1/coflows/{id}  status, CCT once done
//	GET  /v1/schedule      current residual priority order
//	GET  /v1/stats         weighted CCT/response, slowdown and solve-latency percentiles
//	GET  /v1/network       topology summary (host ids for load generators)
//	GET  /v1/epochs        recent scheduler epochs: tick/decide latency, order churn, active counts
//	GET  /healthz          liveness
//	GET  /metrics          Prometheus text metrics (shared telemetry registry)
//	GET  /debug/traces     coflow lifecycle trace spans (JSON ring, ?trace= filters)
//	GET  /debug/pprof/     runtime profiles
//
// Shutdown is graceful: on SIGINT/SIGTERM the listener drains, the engine
// runs every in-flight coflow to completion, and the final statistics are
// dumped to stderr. Drive it with cmd/coflowload.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coflowsched/internal/graph"
	"coflowsched/internal/online"
	"coflowsched/internal/server"
	"coflowsched/internal/stats"
	"coflowsched/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		policyName = flag.String("policy", "sebf", "epoch policy: sebf, fifo, lp")
		epochLen   = flag.Float64("epoch", 2.0, "epoch length in simulated time units")
		timeScale  = flag.Float64("timescale", 1.0, "simulated time units per wall-clock second")
		fatK       = flag.Int("fatk", 4, "fat-tree arity (k=4: 16 servers, k=8: the paper's 128)")
		candidates = flag.Int("paths", 4, "candidate paths per flow at admission")
		partitions = flag.Int("partitions", 0, "simulator partition classes: 0 = auto (pod count capped at GOMAXPROCS), 1 = sequential core, N>1 = coalesce the pods into N classes")
		shard      = flag.String("shard", "", "cluster shard identity: labels every /metrics series with {shard=\"...\"} so gateway-scraped backends stay distinguishable")
		walDir     = flag.String("wal-dir", "", "write-ahead log directory; admissions are fsynced before acking and a restart recovers the engine from snapshot + log")
		snapEvery  = flag.Duration("snapshot-interval", 0, "engine snapshot period (0 = default 30s with -wal-dir, negative disables)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	policies := map[string]online.Policy{
		"sebf": online.SEBFOnline{},
		"fifo": online.FIFOOnline{},
		"lp":   online.LPEpoch{},
	}
	policy, ok := policies[*policyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "coflowd: unknown policy %q (want sebf, fifo, lp)\n", *policyName)
		os.Exit(2)
	}
	if *fatK < 2 || *fatK%2 != 0 {
		fmt.Fprintf(os.Stderr, "coflowd: -fatk must be an even number >= 2, got %d\n", *fatK)
		os.Exit(2)
	}
	if *epochLen <= 0 {
		fmt.Fprintf(os.Stderr, "coflowd: -epoch must be positive, got %v\n", *epochLen)
		os.Exit(2)
	}
	if *timeScale <= 0 {
		fmt.Fprintf(os.Stderr, "coflowd: -timescale must be positive, got %v\n", *timeScale)
		os.Exit(2)
	}
	if *partitions < 0 {
		fmt.Fprintf(os.Stderr, "coflowd: -partitions must be >= 0, got %d\n", *partitions)
		os.Exit(2)
	}
	network := graph.FatTree(*fatK, 1)
	parts := *partitions
	if parts == 0 {
		parts = network.AutoPartitions()
	}

	// Component and shard fields are attached by the server's own call sites
	// and Config defaults, so the base logger carries neither.
	logger := telemetry.NewLogger(os.Stderr, telemetry.ParseLevel(*logLevel), *logFormat, "", "")
	s, err := server.New(server.Config{
		Network:          network,
		Policy:           policy,
		EpochLength:      *epochLen,
		TimeScale:        *timeScale,
		CandidatePaths:   *candidates,
		Partitions:       parts,
		Shard:            *shard,
		WALDir:           *walDir,
		SnapshotInterval: *snapEvery,
		Logger:           logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "coflowd:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("coflowd: %s listening on %s (%d-host fat-tree)",
		s, *addr, graph.NumFatTreeHosts(*fatK))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("coflowd: signal received, draining")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "coflowd:", err)
			os.Exit(1)
		}
		return
	}

	// Graceful shutdown: stop accepting connections, finish in-flight
	// requests, then run the engine dry and report.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("coflowd: http shutdown: %v", err)
	}
	final, err := s.Drain()
	if err != nil {
		log.Printf("coflowd: drain: %v", err)
	}
	s.Close()
	dumpFinalStats(final)
}

// dumpFinalStats prints the end-of-run summary the same way coflowonline
// reports a batch run.
func dumpFinalStats(st online.EngineStats) {
	p := func(xs []float64, q float64) float64 { return stats.PercentileOr(xs, q, 0) }
	log.Printf("coflowd: final: admitted=%d completed=%d epochs=%d decisions=%d", st.Admitted, st.Completed, st.Epochs, st.Decisions)
	log.Printf("coflowd: final: weighted_cct=%.2f weighted_response=%.2f", st.WeightedCCT, st.WeightedResponse)
	log.Printf("coflowd: final: slowdown p50/p95/p99 = %.2f/%.2f/%.2f", p(st.Slowdowns, 50), p(st.Slowdowns, 95), p(st.Slowdowns, 99))
	log.Printf("coflowd: final: solve latency p50/p95/p99 = %.3f/%.3f/%.3f ms",
		p(st.SolveLatencies, 50)*1e3, p(st.SolveLatencies, 95)*1e3, p(st.SolveLatencies, 99)*1e3)
}
