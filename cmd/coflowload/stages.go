package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"coflowsched/internal/telemetry"
)

// stageLatency is one admit-pipeline stage's latency summary, computed from
// the daemon's cumulative coflowd_admit_stage_seconds histogram: how many
// admissions passed through the stage and the interpolated p50/p99 over the
// whole run. The report includes it so a soak violation names the guilty
// stage instead of just a fat end-to-end percentile.
type stageLatency struct {
	Stage string  `json:"stage"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// stageOrder is the pipeline order the breakdown is reported in.
var stageOrder = []string{"coalesce-wait", "batch-assembly", "engine-admit", "wal-append", "group-commit"}

// stageHist accumulates one stage's cumulative histogram, summed across
// shards when the target is a gateway (cumulative bucket counts add).
type stageHist struct {
	count float64
	cum   map[float64]float64 // le bound -> cumulative count
}

// fetchStageBreakdown scrapes the per-stage admit-latency histograms from
// the target. A coflowd target carries them directly; a coflowgate target
// does not, so its /v1/backends roster is scraped and merged instead (dead
// shards are skipped — the breakdown is evidence, not a health check).
func fetchStageBreakdown(base string) ([]stageLatency, error) {
	m, err := scrapeMetricsPage(base)
	if err != nil {
		return nil, err
	}
	agg := map[string]*stageHist{}
	aggregateStages(agg, m)
	if len(agg) == 0 {
		backends, err := fetchBackends(base)
		if err != nil {
			return nil, fmt.Errorf("target has no stage histograms and no backend roster: %v", err)
		}
		for _, b := range backends {
			if bm, err := scrapeMetricsPage(b.URL); err == nil {
				aggregateStages(agg, bm)
			}
		}
	}
	var out []stageLatency
	for _, stage := range stageOrder {
		h, ok := agg[stage]
		if !ok || h.count == 0 {
			continue
		}
		out = append(out, stageLatency{
			Stage: stage,
			Count: uint64(h.count),
			P50:   h.quantile(0.5),
			P99:   h.quantile(0.99),
		})
	}
	return out, nil
}

// aggregateStages folds one /metrics page's coflowd_admit_stage_seconds
// samples into the per-stage accumulators.
func aggregateStages(agg map[string]*stageHist, m *telemetry.Metrics) {
	for _, s := range m.Samples {
		stage := s.Labels["stage"]
		if stage == "" {
			continue
		}
		h := agg[stage]
		if h == nil {
			h = &stageHist{cum: map[float64]float64{}}
			agg[stage] = h
		}
		switch s.Name {
		case "coflowd_admit_stage_seconds_bucket":
			le, err := parseLe(s.Labels["le"])
			if err == nil {
				h.cum[le] += s.Value
			}
		case "coflowd_admit_stage_seconds_count":
			h.count += s.Value
		}
	}
}

func parseLe(raw string) (float64, error) {
	if raw == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(raw, 64)
}

// quantile interpolates the q-quantile from the cumulative buckets,
// Prometheus-style: linear within the containing bucket, clamped to the last
// finite bound for ranks landing in the +Inf bucket.
func (h *stageHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	les := make([]float64, 0, len(h.cum))
	for le := range h.cum {
		les = append(les, le)
	}
	sort.Float64s(les)
	rank := q * h.count
	prevBound, prevCum := 0.0, 0.0
	for _, le := range les {
		c := h.cum[le]
		if c >= rank {
			if math.IsInf(le, 1) {
				return prevBound
			}
			width := c - prevCum
			if width <= 0 {
				return le
			}
			return prevBound + (le-prevBound)*(rank-prevCum)/width
		}
		prevBound, prevCum = le, c
	}
	return prevBound
}

// worstStage names the stage with the highest p99 — the guilty party a soak
// violation points at.
func worstStage(stages []stageLatency) string {
	worst := ""
	var worstP99 float64
	for _, st := range stages {
		if st.P99 >= worstP99 {
			worst, worstP99 = st.Stage, st.P99
		}
	}
	return worst
}

// scrapeMetricsPage fetches and strictly parses one /metrics endpoint.
func scrapeMetricsPage(base string) (*telemetry.Metrics, error) {
	resp, err := http.Get(strings.TrimSuffix(base, "/") + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return telemetry.ParseMetrics(string(body))
}

// fetchBackends reads a coflowgate /v1/backends roster.
func fetchBackends(base string) ([]struct{ Name, URL string }, error) {
	resp, err := http.Get(strings.TrimSuffix(base, "/") + "/v1/backends")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	var roster []struct {
		Name string `json:"name"`
		URL  string `json:"url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&roster); err != nil {
		return nil, err
	}
	out := make([]struct{ Name, URL string }, 0, len(roster))
	for _, b := range roster {
		if b.URL != "" {
			out = append(out, struct{ Name, URL string }{b.Name, b.URL})
		}
	}
	return out, nil
}
