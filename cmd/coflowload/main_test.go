package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coflowsched/internal/graph"
	"coflowsched/internal/online"
	"coflowsched/internal/server"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scenario", "x", "-trace", "y"}, &stdout, &stderr); err == nil {
		t.Errorf("-scenario with -trace accepted")
	}
	if err := run([]string{"-scenario", "no-such"}, &stdout, &stderr); err == nil {
		t.Errorf("unknown scenario accepted")
	}
	if err := run([]string{"-trace", "/does/not/exist.csv"}, &stdout, &stderr); err == nil {
		t.Errorf("missing trace file accepted")
	}
	if err := run([]string{"-not-a-flag"}, &stdout, &stderr); err == nil {
		t.Errorf("unknown flag accepted")
	}
}

func TestRunDeadTarget(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-target", "http://127.0.0.1:1", "-quiet"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("dead target error = %v, want unreachable", err)
	}
}

// TestRunTraceReplay drives the full command against a live in-process
// daemon: parse a trace file, remap it onto the daemon's topology, replay on
// a compressed clock and wait for completion.
func TestRunTraceReplay(t *testing.T) {
	s, err := server.New(server.Config{
		Network:     graph.FatTree(4, 1),
		Policy:      online.SEBFOnline{},
		EpochLength: 2,
		TimeScale:   2000,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	path := filepath.Join(t.TempDir(), "t.csv")
	traceCSV := "coflow,arrival_ms,mappers,reducers\nj0,0,0;1,2:40;3:20\nj1,200,4,5:10\nj2,500,2;3,0:30\n"
	if err := os.WriteFile(path, []byte(traceCSV), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	err = run([]string{"-target", ts.URL, "-trace", path, "-speedup", "10", "-wait", "-quiet"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "failures=0") || !strings.Contains(out, "completed=3") {
		t.Errorf("unexpected replay report:\n%s", out)
	}
	if !strings.Contains(out, "daemon: admitted=3 completed=3") {
		t.Errorf("missing daemon stats line:\n%s", out)
	}
}

// TestRunJSONOutput: -json prints one machine-readable object with the load
// summary and (with -wait) the daemon's final statistics.
func TestRunJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-cluster", "1", "-cluster-timescale", "200",
		"-coflows", "5", "-rate", "500", "-wait", "-quiet", "-json",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -json: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	var out struct {
		Target string `json:"target"`
		Load   struct {
			Requests    int     `json:"requests"`
			Failures    int     `json:"failures"`
			AchievedRPS float64 `json:"achieved_rps"`
			P95         float64 `json:"admit_latency_p95_seconds"`
			Completed   int     `json:"completed"`
		} `json:"load"`
		Daemon *struct {
			Admitted  int `json:"admitted"`
			Completed int `json:"completed"`
		} `json:"daemon"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("stdout is not one JSON object: %v\n%s", err, stdout.String())
	}
	if out.Target == "" || out.Load.Requests != 5 || out.Load.Failures != 0 || out.Load.Completed != 5 {
		t.Errorf("unexpected JSON load summary: %+v", out)
	}
	if out.Load.AchievedRPS <= 0 || out.Load.P95 <= 0 {
		t.Errorf("JSON summary lacks throughput/latency: %+v", out.Load)
	}
	if out.Daemon == nil || out.Daemon.Completed != 5 {
		t.Errorf("JSON summary lacks daemon stats: %+v", out.Daemon)
	}
}

// TestRunClusterMode spins the in-process cluster behind the new -cluster
// flag and replays a small workload through the gateway to completion.
func TestRunClusterMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-cluster", "2", "-cluster-timescale", "200",
		"-coflows", "12", "-rate", "500", "-wait", "-quiet",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -cluster: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "failures=0") || !strings.Contains(out, "completed=12") {
		t.Errorf("unexpected cluster replay report:\n%s", out)
	}
	if !strings.Contains(out, "daemon: admitted=12 completed=12") {
		t.Errorf("missing merged stats line:\n%s", out)
	}

	// Bad cluster placement fails fast.
	if err := run([]string{"-cluster", "2", "-cluster-placement", "nope"}, &stdout, &stderr); err == nil {
		t.Error("bogus cluster placement accepted")
	}
}
