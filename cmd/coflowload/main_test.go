package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"coflowsched/internal/cluster"
	"coflowsched/internal/graph"
	"coflowsched/internal/monitor"
	"coflowsched/internal/online"
	"coflowsched/internal/server"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scenario", "x", "-trace", "y"}, &stdout, &stderr); err == nil {
		t.Errorf("-scenario with -trace accepted")
	}
	if err := run([]string{"-scenario", "no-such"}, &stdout, &stderr); err == nil {
		t.Errorf("unknown scenario accepted")
	}
	if err := run([]string{"-trace", "/does/not/exist.csv"}, &stdout, &stderr); err == nil {
		t.Errorf("missing trace file accepted")
	}
	if err := run([]string{"-not-a-flag"}, &stdout, &stderr); err == nil {
		t.Errorf("unknown flag accepted")
	}
}

func TestRunDeadTarget(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-target", "http://127.0.0.1:1", "-quiet"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("dead target error = %v, want unreachable", err)
	}
}

// TestRunTraceReplay drives the full command against a live in-process
// daemon: parse a trace file, remap it onto the daemon's topology, replay on
// a compressed clock and wait for completion.
func TestRunTraceReplay(t *testing.T) {
	s, err := server.New(server.Config{
		Network:     graph.FatTree(4, 1),
		Policy:      online.SEBFOnline{},
		EpochLength: 2,
		TimeScale:   2000,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	path := filepath.Join(t.TempDir(), "t.csv")
	traceCSV := "coflow,arrival_ms,mappers,reducers\nj0,0,0;1,2:40;3:20\nj1,200,4,5:10\nj2,500,2;3,0:30\n"
	if err := os.WriteFile(path, []byte(traceCSV), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	err = run([]string{"-target", ts.URL, "-trace", path, "-speedup", "10", "-wait", "-quiet"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "failures=0") || !strings.Contains(out, "completed=3") {
		t.Errorf("unexpected replay report:\n%s", out)
	}
	if !strings.Contains(out, "daemon: admitted=3 completed=3") {
		t.Errorf("missing daemon stats line:\n%s", out)
	}
}

// TestRunJSONOutput: -json prints one machine-readable object with the load
// summary and (with -wait) the daemon's final statistics.
func TestRunJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-cluster", "1", "-cluster-timescale", "200",
		"-coflows", "5", "-rate", "500", "-wait", "-quiet", "-json",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -json: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	var out struct {
		Target string `json:"target"`
		Load   struct {
			Requests    int     `json:"requests"`
			Failures    int     `json:"failures"`
			AchievedRPS float64 `json:"achieved_rps"`
			P95         float64 `json:"admit_latency_p95_seconds"`
			Completed   int     `json:"completed"`
		} `json:"load"`
		Daemon *struct {
			Admitted  int `json:"admitted"`
			Completed int `json:"completed"`
		} `json:"daemon"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("stdout is not one JSON object: %v\n%s", err, stdout.String())
	}
	if out.Target == "" || out.Load.Requests != 5 || out.Load.Failures != 0 || out.Load.Completed != 5 {
		t.Errorf("unexpected JSON load summary: %+v", out)
	}
	if out.Load.AchievedRPS <= 0 || out.Load.P95 <= 0 {
		t.Errorf("JSON summary lacks throughput/latency: %+v", out.Load)
	}
	if out.Daemon == nil || out.Daemon.Completed != 5 {
		t.Errorf("JSON summary lacks daemon stats: %+v", out.Daemon)
	}
}

// TestRunClusterMode spins the in-process cluster behind the new -cluster
// flag and replays a small workload through the gateway to completion.
func TestRunClusterMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-cluster", "2", "-cluster-timescale", "200",
		"-coflows", "12", "-rate", "500", "-wait", "-quiet",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -cluster: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "failures=0") || !strings.Contains(out, "completed=12") {
		t.Errorf("unexpected cluster replay report:\n%s", out)
	}
	if !strings.Contains(out, "daemon: admitted=12 completed=12") {
		t.Errorf("missing merged stats line:\n%s", out)
	}

	// Bad cluster placement fails fast.
	if err := run([]string{"-cluster", "2", "-cluster-placement", "nope"}, &stdout, &stderr); err == nil {
		t.Error("bogus cluster placement accepted")
	}
}

// TestSoakRules: -slo overrides map onto the stock rule set.
func TestSoakRules(t *testing.T) {
	rules, err := soakRules("p99_admit_ms=250, p99_tick_ms=80")
	if err != nil {
		t.Fatalf("soakRules: %v", err)
	}
	objectives := map[string]float64{}
	for _, r := range rules {
		objectives[r.Name] = r.Objective
	}
	if objectives["admit-p99"] != 0.25 || objectives["tick-p99"] != 0.08 {
		t.Errorf("overrides not applied: %+v", objectives)
	}
	for _, bad := range []string{"p99_admit_ms", "nope=5", "p99_admit_ms=-1", "p99_admit_ms=x"} {
		if _, err := soakRules(bad); err == nil {
			t.Errorf("soakRules(%q) accepted", bad)
		}
	}
	// -slo without -cluster is a flag error.
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-slo", "p99_admit_ms=250"}, &stdout, &stderr); err == nil {
		t.Error("-slo without -cluster accepted")
	}
	// -soak without any monitor is a flag error.
	if err := run([]string{"-target", "http://127.0.0.1:1", "-soak", "1s"}, &stdout, &stderr); err == nil {
		t.Error("-soak without -monitor or -cluster accepted")
	}
}

// TestRunSoakHealthy is the green half of the SLO-enforcement acceptance
// test: a short soak of a healthy embedded cluster exits zero with every
// rule healthy in the JSON soak section.
func TestRunSoakHealthy(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-cluster", "2", "-cluster-timescale", "200",
		"-soak", "1500ms", "-rate", "40", "-slo", "p99_admit_ms=5000",
		"-wait", "-quiet", "-json",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("healthy soak failed: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	var out struct {
		Soak *struct {
			DurationSeconds float64  `json:"duration_seconds"`
			Violated        []string `json:"violated"`
			Rules           []struct {
				Rule struct {
					Name string `json:"name"`
				} `json:"rule"`
				State string `json:"state"`
			} `json:"rules"`
		} `json:"soak"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout.String())
	}
	if out.Soak == nil || out.Soak.DurationSeconds < 1.4 {
		t.Fatalf("soak section missing or short: %+v", out.Soak)
	}
	if len(out.Soak.Violated) != 0 {
		t.Errorf("healthy soak reported violations: %+v", out.Soak.Violated)
	}
	names := map[string]bool{}
	for _, r := range out.Soak.Rules {
		names[r.Rule.Name] = true
	}
	for _, want := range []string{"admit-p99", "tick-p99", "shard-down", "scrape-failure"} {
		if !names[want] {
			t.Errorf("soak rules lack %s (have %v)", want, names)
		}
	}
}

// TestRunSoakViolated is the red half: a soak pointed (via -monitor) at a
// cluster whose shard has been killed exits with errSLOViolated, and the
// monitor's flight recorder has written a bundle for the fired rule.
func TestRunSoakViolated(t *testing.T) {
	bundleDir := t.TempDir()
	l, err := cluster.NewLocal(cluster.LocalConfig{
		Shards:    2,
		TimeScale: 200,
		Monitor: &monitor.Config{
			Interval:  100 * time.Millisecond,
			BundleDir: bundleDir,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("new local cluster: %v", err)
	}
	defer l.Close()

	// Kill a shard and wait for the monitor to notice: the shard's listener
	// answers 503, so its scrape fails (up=0) and, once the gateway's health
	// loop ejects it, coflowgate_backend_up goes 0 too.
	l.Kill(1)
	deadline := time.Now().Add(20 * time.Second)
	for {
		fired := false
		for _, r := range l.Monitor.RuleStatuses() {
			if r.Rule.Name == "scrape-failure" && r.State == monitor.StateFiring {
				fired = true
			}
		}
		if fired {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrape-failure never fired: %+v", l.Monitor.RuleStatuses())
		}
		time.Sleep(50 * time.Millisecond)
	}

	var stdout, stderr bytes.Buffer
	err = run([]string{
		"-target", l.URL(), "-monitor", l.MonitorURL(),
		"-soak", "500ms", "-rate", "20", "-quiet",
	}, &stdout, &stderr)
	if !errors.Is(err, errSLOViolated) {
		t.Fatalf("soak against broken cluster = %v, want errSLOViolated\nstdout: %s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "VIOLATED") {
		t.Errorf("text report lacks violation banner:\n%s", stdout.String())
	}

	// The firing transition produced a readable bundle. The write lands after
	// the firing state becomes visible (capture samples an on-alert CPU
	// profile first), so poll for the file.
	var entries []os.DirEntry
	deadline = time.Now().Add(20 * time.Second)
	for {
		entries, err = os.ReadDir(bundleDir)
		if err == nil && len(entries) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no bundles written: %v %v", entries, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	data, err := os.ReadFile(filepath.Join(bundleDir, entries[0].Name()))
	if err != nil {
		t.Fatalf("read bundle: %v", err)
	}
	var b monitor.Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if b.Rule.State != monitor.StateFiring || len(b.Series) == 0 || len(b.Targets) == 0 {
		t.Errorf("bundle incomplete: rule=%+v series=%d targets=%d", b.Rule, len(b.Series), len(b.Targets))
	}
}
