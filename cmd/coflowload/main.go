// Command coflowload replays a coflow arrival process against a live coflowd
// daemon (cmd/coflowd) and reports achieved request throughput plus
// admit-latency percentiles — the closed-loop load-testing companion to the
// daemon.
//
// Three workload sources:
//
//	coflowload -target http://localhost:8080 -coflows 200 -rate 100 -wait
//	coflowload -scenario heavy-tail -speedup 4 -wait
//	coflowload -trace fb.csv -speedup 10 -wait
//
// With -cluster N the target is replaced by an in-process cluster: N coflowd
// shards behind a coflowgate gateway, all on loopback listeners (the same
// harness coflowbench -experiment cluster uses). That makes shard-count
// scaling measurable from one command with no daemons to start:
//
//	coflowload -cluster 4 -coflows 400 -rate 1000 -cluster-timescale 50 -wait
//
// The default mode generates a Poisson process (workload.GenerateArrivals)
// remapped onto the daemon's actual topology (fetched from GET /v1/network).
// With -scenario or -trace, the named registry scenario or parsed trace file
// is replayed instead: simulated arrival times are compressed by -speedup
// into the wall-clock send schedule, so a multi-hour trace can drive the
// daemon in seconds (pair with the daemon's -timescale).
//
// With -wait the command polls until every admitted coflow completes and
// reports the daemon's final scheduling statistics. Exit status is non-zero
// if any request failed.
//
// With -soak DURATION the command becomes an SLO-gated soak test: it holds
// the target request rate for the duration while polling a coflowmon
// /v1/slo endpoint, and exits non-zero if any SLO rule fires. The monitor is
// either external (-monitor URL) or, with -cluster, embedded automatically
// in the in-process cluster. -slo overrides stock objectives
// (p99_admit_ms=X, p99_tick_ms=X, comma-separated) and -bundle-dir gives the
// embedded monitor's flight recorder a home:
//
//	coflowload -cluster 2 -soak 30s -rate 200 -slo p99_admit_ms=250 -bundle-dir ./bundles
//	coflowload -target http://gw:8090 -monitor http://mon:8099 -soak 5m
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"coflowsched/internal/cluster"
	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/monitor"
	"coflowsched/internal/server"
	"coflowsched/internal/workload"
)

// errFailedRequests distinguishes "the replay ran but some admissions
// failed" (already summarized in the printed report) from setup errors.
var errFailedRequests = errors.New("some requests failed")

// errSLOViolated means the soak completed but an SLO rule fired — the
// gating signal CI and release pipelines key on.
var errSLOViolated = errors.New("slo violated")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFailedRequests) && !errors.Is(err, errSLOViolated) {
			fmt.Fprintln(os.Stderr, "coflowload:", err)
		}
		os.Exit(1)
	}
}

// run is main with injectable arguments and streams (smoke-testable without
// exec'ing a binary).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coflowload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target      = fs.String("target", "http://localhost:8080", "coflowd base URL")
		coflows     = fs.Int("coflows", 100, "number of coflows to replay (generated mode)")
		width       = fs.Int("width", 3, "flows per coflow (generated mode)")
		meanSize    = fs.Float64("size", 4, "mean flow size (generated mode)")
		meanWeight  = fs.Float64("weight", 1, "mean coflow weight (generated mode)")
		rate        = fs.Float64("rate", 50, "mean coflow arrivals per wall-clock second (generated mode)")
		scenario    = fs.String("scenario", "", "replay a named workload scenario instead of generating (see coflowgen -list-scenarios)")
		trace       = fs.String("trace", "", "replay a Facebook/Varys-style CSV trace file instead of generating")
		maxCoflows  = fs.Int("max-coflows", 0, "truncate a -trace replay to the first n coflows (0 = all)")
		speedup     = fs.Float64("speedup", 1, "replay clock compression for -scenario/-trace: simulated arrival time t is sent at wall-clock t/speedup seconds")
		concurrency = fs.Int("concurrency", 4, "concurrent admit requests")
		seed        = fs.Int64("seed", 1, "random seed (generated mode)")
		wait        = fs.Bool("wait", false, "poll until every admitted coflow completes")
		waitTimeout = fs.Duration("wait-timeout", 60*time.Second, "completion polling budget with -wait")
		quiet       = fs.Bool("quiet", false, "suppress progress logging")
		jsonOut     = fs.Bool("json", false, "print the run summary as one JSON object (machine-readable; implies -quiet on stdout formatting only)")

		clusterN  = fs.Int("cluster", 0, "replay against an in-process cluster of this many coflowd shards behind a coflowgate gateway (overrides -target)")
		placement = fs.String("cluster-placement", "hash", "gateway placement with -cluster: hash, least-load")
		timescale = fs.Float64("cluster-timescale", 50, "shard simulated time units per wall second with -cluster")

		soak       = fs.Duration("soak", 0, "hold the target rate for this long while polling /v1/slo; exit non-zero if a rule fires")
		sloSpec    = fs.String("slo", "", "comma-separated SLO objective overrides for the embedded monitor: p99_admit_ms=X, p99_tick_ms=X")
		monitorURL = fs.String("monitor", "", "coflowmon base URL to poll during -soak (set automatically with -cluster)")
		bundleDir  = fs.String("bundle-dir", "", "flight-recorder bundle directory for the embedded monitor")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *scenario != "" && *trace != "" {
		return fmt.Errorf("-scenario and -trace are mutually exclusive")
	}
	sloRules, err := soakRules(*sloSpec)
	if err != nil {
		return err
	}
	if *sloSpec != "" && *clusterN == 0 {
		return fmt.Errorf("-slo configures the embedded monitor and needs -cluster")
	}

	cfg := server.LoadConfig{
		Coflows:      *coflows,
		Width:        *width,
		MeanSize:     *meanSize,
		MeanWeight:   *meanWeight,
		Rate:         *rate,
		SpeedUp:      *speedup,
		Concurrency:  *concurrency,
		Seed:         *seed,
		WaitComplete: *wait,
		WaitTimeout:  *waitTimeout,
	}
	switch {
	case *scenario != "":
		sc, ok := workload.LookupScenario(*scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q (have %v)", *scenario, workload.ScenarioNames())
		}
		inst, arrivals, err := sc.Build()
		if err != nil {
			return err
		}
		cfg.Instance, cfg.Arrivals = inst, arrivals
	case *trace != "":
		inst, arrivals, err := loadTrace(*trace, *maxCoflows)
		if err != nil {
			return err
		}
		cfg.Instance, cfg.Arrivals = inst, arrivals
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	targetURL := *target
	monURL := *monitorURL
	if *clusterN > 0 {
		pl, err := cluster.ParsePlacement(*placement)
		if err != nil {
			return err
		}
		lcfg := cluster.LocalConfig{
			Shards:    *clusterN,
			TimeScale: *timescale,
			Gateway:   cluster.Config{Placement: pl},
			Logf:      logf,
		}
		if *soak > 0 || *bundleDir != "" {
			// A soaked or bundle-collecting cluster run gets an embedded
			// monitor watching the gateway and every shard.
			lcfg.Monitor = &monitor.Config{
				Interval:  soakScrapeInterval,
				Rules:     sloRules,
				BundleDir: *bundleDir,
			}
		}
		local, err := cluster.NewLocal(lcfg)
		if err != nil {
			return fmt.Errorf("starting in-process cluster: %v", err)
		}
		defer local.Close()
		targetURL = local.URL()
		logf("coflowload: in-process cluster of %d shards at %s (%s placement)", *clusterN, targetURL, pl.Name())
		if local.Monitor != nil {
			monURL = local.MonitorURL()
			logf("coflowload: embedded monitor at %s", monURL)
		}
	}
	if *soak > 0 {
		if monURL == "" {
			return fmt.Errorf("-soak needs a monitor: pass -monitor URL or use -cluster")
		}
		if cfg.Instance == nil {
			// Size the generated workload to cover the soak window at the
			// requested rate; -coflows is ignored in soak mode.
			cfg.Coflows = int(soak.Seconds()**rate) + 1
		}
	}

	c := server.NewClient(targetURL)
	health, err := c.Health()
	if err != nil {
		return fmt.Errorf("daemon unreachable at %s: %v", targetURL, err)
	}
	cfg.Logf = logf
	logf("coflowload: target %s healthy (policy %s, sim clock %.2f)", targetURL, health.Policy, health.Now)
	if cfg.Instance != nil {
		logf("coflowload: replaying %d coflows (%d flows) at %gx compression",
			len(cfg.Instance.Coflows), cfg.Instance.NumFlows(), *speedup)
	}

	var report *server.LoadReport
	var soakRep *soakReport
	if *soak > 0 {
		report, soakRep, err = runSoak(c, cfg, monURL, *soak, logf)
	} else {
		report, err = server.RunLoad(c, cfg)
	}
	if err != nil {
		if report != nil && !*jsonOut {
			fmt.Fprintln(stdout, report)
		}
		return err
	}

	var daemonStats *server.StatsResponse
	if *wait {
		st, err := c.Stats()
		if err != nil {
			return fmt.Errorf("fetching final stats: %v", err)
		}
		daemonStats = &st
	}
	// Best-effort per-stage admit-latency breakdown, scraped from the shard
	// histograms: it turns "admit p99 violated" into "group-commit grew".
	stages, stageErr := fetchStageBreakdown(targetURL)
	if stageErr != nil {
		logf("coflowload: stage breakdown unavailable: %v", stageErr)
	}
	if soakRep != nil && len(soakRep.Violated) > 0 {
		soakRep.GuiltyStage = worstStage(stages)
	}
	if *jsonOut {
		// One JSON object on stdout: the replay summary plus, with -wait, the
		// daemon's final scheduling statistics — scriptable run comparison.
		out := struct {
			Target string                `json:"target"`
			Load   *server.LoadReport    `json:"load"`
			Daemon *server.StatsResponse `json:"daemon,omitempty"`
			Stages []stageLatency        `json:"admit_stages,omitempty"`
			Soak   *soakReport           `json:"soak,omitempty"`
		}{Target: targetURL, Load: report, Daemon: daemonStats, Stages: stages, Soak: soakRep}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(stdout, report)
		if daemonStats != nil {
			st := daemonStats
			fmt.Fprintf(stdout, "daemon: admitted=%d completed=%d weighted_cct=%.2f weighted_response=%.2f slowdown_p95=%.2f solve_ms_p95=%.3f\n",
				st.Admitted, st.Completed, st.WeightedCCT, st.WeightedResponse, st.SlowdownP95, st.SolveMsP95)
		}
		for _, st := range stages {
			fmt.Fprintf(stdout, "stage: %-15s count=%-6d p50=%.3fms p99=%.3fms\n",
				st.Stage, st.Count, st.P50*1000, st.P99*1000)
		}
		if soakRep != nil {
			fmt.Fprint(stdout, soakRep)
		}
	}
	if soakRep != nil && len(soakRep.Violated) > 0 {
		return errSLOViolated
	}
	if report.Failures > 0 {
		return errFailedRequests
	}
	return nil
}

// soakScrapeInterval is the embedded monitor's scrape period in soak mode —
// short enough that a short CI soak sees several rule evaluations.
const soakScrapeInterval = 100 * time.Millisecond

// soakReport summarizes an SLO-gated soak: the held duration, every rule's
// final status, and the rules that fired at any point during the window.
type soakReport struct {
	DurationSeconds float64              `json:"duration_seconds"`
	Rules           []monitor.RuleStatus `json:"rules"`
	Violated        []string             `json:"violated,omitempty"`
	// GuiltyStage names the admit-pipeline stage with the worst p99 when a
	// rule fired — the first place to look.
	GuiltyStage string `json:"guilty_stage,omitempty"`
}

// String renders the text-mode soak summary.
func (s *soakReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soak: held %.1fs, %d rules", s.DurationSeconds, len(s.Rules))
	if len(s.Violated) == 0 {
		b.WriteString(", all healthy\n")
	} else {
		fmt.Fprintf(&b, ", VIOLATED: %s", strings.Join(s.Violated, ", "))
		if s.GuiltyStage != "" {
			fmt.Fprintf(&b, " (worst stage: %s)", s.GuiltyStage)
		}
		b.WriteString("\n")
	}
	for _, r := range s.Rules {
		fmt.Fprintf(&b, "soak: rule %-16s %-8s firings=%d\n", r.Rule.Name, r.State, r.Firings)
	}
	return b.String()
}

// runSoak drives the load in the background while polling the monitor's
// /v1/slo, holding the soak window open even if the load finishes early. A
// rule counts as violated if it is firing — or has fired — at any poll.
func runSoak(c *server.Client, cfg server.LoadConfig, monURL string, d time.Duration, logf func(string, ...any)) (*server.LoadReport, *soakReport, error) {
	type loadResult struct {
		report *server.LoadReport
		err    error
	}
	start := time.Now()
	loadCh := make(chan loadResult, 1)
	go func() {
		r, err := server.RunLoad(c, cfg)
		loadCh <- loadResult{r, err}
	}()

	violated := map[string]bool{}
	poll := func() ([]monitor.RuleStatus, error) {
		rules, err := fetchSLO(monURL)
		if err != nil {
			return nil, err
		}
		for _, r := range rules {
			if (r.State == monitor.StateFiring || r.Firings > 0) && !violated[r.Rule.Name] {
				violated[r.Rule.Name] = true
				logf("coflowload: SLO %s %s (firings=%d)", r.Rule.Name, r.State, r.Firings)
			}
		}
		return rules, nil
	}

	ticker := time.NewTicker(soakScrapeInterval)
	defer ticker.Stop()
	deadline := time.After(d)
	var load *loadResult
	var pollErr error
	for load == nil || time.Since(start) < d {
		select {
		case r := <-loadCh:
			load = &r
		case <-ticker.C:
			if _, err := poll(); err != nil {
				pollErr = err
			} else {
				pollErr = nil
			}
		case <-deadline:
			// Window elapsed; keep draining the load if it is still running.
			if load == nil {
				r := <-loadCh
				load = &r
			}
		}
	}
	finalRules, err := poll()
	if err != nil {
		return load.report, nil, fmt.Errorf("polling monitor %s: %v", monURL, err)
	}
	if pollErr != nil {
		return load.report, nil, fmt.Errorf("polling monitor %s: %v", monURL, pollErr)
	}
	rep := &soakReport{DurationSeconds: time.Since(start).Seconds(), Rules: finalRules}
	for _, r := range finalRules {
		if violated[r.Rule.Name] {
			rep.Violated = append(rep.Violated, r.Rule.Name)
		}
	}
	return load.report, rep, load.err
}

// fetchSLO reads a coflowmon /v1/slo endpoint.
func fetchSLO(monURL string) ([]monitor.RuleStatus, error) {
	resp, err := http.Get(strings.TrimSuffix(monURL, "/") + "/v1/slo")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	var body struct {
		Rules []monitor.RuleStatus `json:"rules"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Rules, nil
}

// soakRules builds the embedded monitor's rule set: the stock DefaultRules
// over the soak scrape interval, with -slo objective overrides applied.
// Supported keys: p99_admit_ms (admit-p99), p99_tick_ms (tick-p99).
func soakRules(spec string) ([]monitor.Rule, error) {
	rules := monitor.DefaultRules(soakScrapeInterval)
	if spec == "" {
		return rules, nil
	}
	byKey := map[string]string{"p99_admit_ms": "admit-p99", "p99_tick_ms": "tick-p99"}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, raw, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -slo entry %q (want key=value)", part)
		}
		name, known := byKey[strings.TrimSpace(key)]
		if !known {
			return nil, fmt.Errorf("unknown -slo key %q (have p99_admit_ms, p99_tick_ms)", key)
		}
		ms, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil || ms <= 0 {
			return nil, fmt.Errorf("bad -slo value in %q: want positive milliseconds", part)
		}
		for i := range rules {
			if rules[i].Name == name {
				rules[i].Objective = ms / 1000
			}
		}
	}
	return rules, nil
}

// loadTrace parses a trace file and realizes it on a stand-in star wide
// enough for every slot — server.RunLoad remaps hosts by index onto whatever
// topology the daemon actually runs.
func loadTrace(path string, maxCoflows int) (*coflow.Instance, []float64, error) {
	tr, err := workload.ParseTraceFile(path)
	if err != nil {
		return nil, nil, err
	}
	maxSlot := 0
	for _, rec := range tr.Records {
		for _, s := range rec.Mappers {
			if s > maxSlot {
				maxSlot = s
			}
		}
		for _, s := range rec.Reducers {
			if s > maxSlot {
				maxSlot = s
			}
		}
	}
	standIn := graph.Star(maxSlot+2, 1)
	return tr.Instance(standIn, workload.TraceConfig{MaxCoflows: maxCoflows})
}
