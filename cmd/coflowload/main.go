// Command coflowload replays a coflow arrival process against a live coflowd
// daemon (cmd/coflowd) and reports achieved request throughput plus
// admit-latency percentiles — the closed-loop load-testing companion to the
// daemon.
//
// Three workload sources:
//
//	coflowload -target http://localhost:8080 -coflows 200 -rate 100 -wait
//	coflowload -scenario heavy-tail -speedup 4 -wait
//	coflowload -trace fb.csv -speedup 10 -wait
//
// With -cluster N the target is replaced by an in-process cluster: N coflowd
// shards behind a coflowgate gateway, all on loopback listeners (the same
// harness coflowbench -experiment cluster uses). That makes shard-count
// scaling measurable from one command with no daemons to start:
//
//	coflowload -cluster 4 -coflows 400 -rate 1000 -cluster-timescale 50 -wait
//
// The default mode generates a Poisson process (workload.GenerateArrivals)
// remapped onto the daemon's actual topology (fetched from GET /v1/network).
// With -scenario or -trace, the named registry scenario or parsed trace file
// is replayed instead: simulated arrival times are compressed by -speedup
// into the wall-clock send schedule, so a multi-hour trace can drive the
// daemon in seconds (pair with the daemon's -timescale).
//
// With -wait the command polls until every admitted coflow completes and
// reports the daemon's final scheduling statistics. Exit status is non-zero
// if any request failed.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"coflowsched/internal/cluster"
	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/server"
	"coflowsched/internal/workload"
)

// errFailedRequests distinguishes "the replay ran but some admissions
// failed" (already summarized in the printed report) from setup errors.
var errFailedRequests = errors.New("some requests failed")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFailedRequests) {
			fmt.Fprintln(os.Stderr, "coflowload:", err)
		}
		os.Exit(1)
	}
}

// run is main with injectable arguments and streams (smoke-testable without
// exec'ing a binary).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coflowload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target      = fs.String("target", "http://localhost:8080", "coflowd base URL")
		coflows     = fs.Int("coflows", 100, "number of coflows to replay (generated mode)")
		width       = fs.Int("width", 3, "flows per coflow (generated mode)")
		meanSize    = fs.Float64("size", 4, "mean flow size (generated mode)")
		meanWeight  = fs.Float64("weight", 1, "mean coflow weight (generated mode)")
		rate        = fs.Float64("rate", 50, "mean coflow arrivals per wall-clock second (generated mode)")
		scenario    = fs.String("scenario", "", "replay a named workload scenario instead of generating (see coflowgen -list-scenarios)")
		trace       = fs.String("trace", "", "replay a Facebook/Varys-style CSV trace file instead of generating")
		maxCoflows  = fs.Int("max-coflows", 0, "truncate a -trace replay to the first n coflows (0 = all)")
		speedup     = fs.Float64("speedup", 1, "replay clock compression for -scenario/-trace: simulated arrival time t is sent at wall-clock t/speedup seconds")
		concurrency = fs.Int("concurrency", 4, "concurrent admit requests")
		seed        = fs.Int64("seed", 1, "random seed (generated mode)")
		wait        = fs.Bool("wait", false, "poll until every admitted coflow completes")
		waitTimeout = fs.Duration("wait-timeout", 60*time.Second, "completion polling budget with -wait")
		quiet       = fs.Bool("quiet", false, "suppress progress logging")
		jsonOut     = fs.Bool("json", false, "print the run summary as one JSON object (machine-readable; implies -quiet on stdout formatting only)")

		clusterN  = fs.Int("cluster", 0, "replay against an in-process cluster of this many coflowd shards behind a coflowgate gateway (overrides -target)")
		placement = fs.String("cluster-placement", "hash", "gateway placement with -cluster: hash, least-load")
		timescale = fs.Float64("cluster-timescale", 50, "shard simulated time units per wall second with -cluster")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *scenario != "" && *trace != "" {
		return fmt.Errorf("-scenario and -trace are mutually exclusive")
	}

	cfg := server.LoadConfig{
		Coflows:      *coflows,
		Width:        *width,
		MeanSize:     *meanSize,
		MeanWeight:   *meanWeight,
		Rate:         *rate,
		SpeedUp:      *speedup,
		Concurrency:  *concurrency,
		Seed:         *seed,
		WaitComplete: *wait,
		WaitTimeout:  *waitTimeout,
	}
	switch {
	case *scenario != "":
		sc, ok := workload.LookupScenario(*scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q (have %v)", *scenario, workload.ScenarioNames())
		}
		inst, arrivals, err := sc.Build()
		if err != nil {
			return err
		}
		cfg.Instance, cfg.Arrivals = inst, arrivals
	case *trace != "":
		inst, arrivals, err := loadTrace(*trace, *maxCoflows)
		if err != nil {
			return err
		}
		cfg.Instance, cfg.Arrivals = inst, arrivals
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	targetURL := *target
	if *clusterN > 0 {
		pl, err := cluster.ParsePlacement(*placement)
		if err != nil {
			return err
		}
		local, err := cluster.NewLocal(cluster.LocalConfig{
			Shards:    *clusterN,
			TimeScale: *timescale,
			Gateway:   cluster.Config{Placement: pl},
			Logf:      logf,
		})
		if err != nil {
			return fmt.Errorf("starting in-process cluster: %v", err)
		}
		defer local.Close()
		targetURL = local.URL()
		logf("coflowload: in-process cluster of %d shards at %s (%s placement)", *clusterN, targetURL, pl.Name())
	}

	c := server.NewClient(targetURL)
	health, err := c.Health()
	if err != nil {
		return fmt.Errorf("daemon unreachable at %s: %v", targetURL, err)
	}
	cfg.Logf = logf
	logf("coflowload: target %s healthy (policy %s, sim clock %.2f)", targetURL, health.Policy, health.Now)
	if cfg.Instance != nil {
		logf("coflowload: replaying %d coflows (%d flows) at %gx compression",
			len(cfg.Instance.Coflows), cfg.Instance.NumFlows(), *speedup)
	}

	report, err := server.RunLoad(c, cfg)
	if err != nil {
		if report != nil && !*jsonOut {
			fmt.Fprintln(stdout, report)
		}
		return err
	}

	var daemonStats *server.StatsResponse
	if *wait {
		st, err := c.Stats()
		if err != nil {
			return fmt.Errorf("fetching final stats: %v", err)
		}
		daemonStats = &st
	}
	if *jsonOut {
		// One JSON object on stdout: the replay summary plus, with -wait, the
		// daemon's final scheduling statistics — scriptable run comparison.
		out := struct {
			Target string                `json:"target"`
			Load   *server.LoadReport    `json:"load"`
			Daemon *server.StatsResponse `json:"daemon,omitempty"`
		}{Target: targetURL, Load: report, Daemon: daemonStats}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(stdout, report)
		if daemonStats != nil {
			st := daemonStats
			fmt.Fprintf(stdout, "daemon: admitted=%d completed=%d weighted_cct=%.2f weighted_response=%.2f slowdown_p95=%.2f solve_ms_p95=%.3f\n",
				st.Admitted, st.Completed, st.WeightedCCT, st.WeightedResponse, st.SlowdownP95, st.SolveMsP95)
		}
	}
	if report.Failures > 0 {
		return errFailedRequests
	}
	return nil
}

// loadTrace parses a trace file and realizes it on a stand-in star wide
// enough for every slot — server.RunLoad remaps hosts by index onto whatever
// topology the daemon actually runs.
func loadTrace(path string, maxCoflows int) (*coflow.Instance, []float64, error) {
	tr, err := workload.ParseTraceFile(path)
	if err != nil {
		return nil, nil, err
	}
	maxSlot := 0
	for _, rec := range tr.Records {
		for _, s := range rec.Mappers {
			if s > maxSlot {
				maxSlot = s
			}
		}
		for _, s := range rec.Reducers {
			if s > maxSlot {
				maxSlot = s
			}
		}
	}
	standIn := graph.Star(maxSlot+2, 1)
	return tr.Instance(standIn, workload.TraceConfig{MaxCoflows: maxCoflows})
}
