// Command coflowload replays a Poisson coflow arrival process against a live
// coflowd daemon (cmd/coflowd) and reports achieved request throughput plus
// admit-latency percentiles — the closed-loop load-testing companion to the
// daemon. The workload comes from workload.GenerateArrivals, remapped onto
// the daemon's actual topology (fetched from GET /v1/network).
//
//	coflowload -target http://localhost:8080 -coflows 200 -rate 100 -wait
//
// With -wait the command polls until every admitted coflow completes and
// reports the daemon's final scheduling statistics. Exit status is non-zero
// if any request failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"coflowsched/internal/server"
)

func main() {
	var (
		target      = flag.String("target", "http://localhost:8080", "coflowd base URL")
		coflows     = flag.Int("coflows", 100, "number of coflows to replay")
		width       = flag.Int("width", 3, "flows per coflow")
		meanSize    = flag.Float64("size", 4, "mean flow size")
		meanWeight  = flag.Float64("weight", 1, "mean coflow weight")
		rate        = flag.Float64("rate", 50, "mean coflow arrivals per wall-clock second (Poisson)")
		concurrency = flag.Int("concurrency", 4, "concurrent admit requests")
		seed        = flag.Int64("seed", 1, "random seed")
		wait        = flag.Bool("wait", false, "poll until every admitted coflow completes")
		waitTimeout = flag.Duration("wait-timeout", 60*time.Second, "completion polling budget with -wait")
		quiet       = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	c := server.NewClient(*target)
	health, err := c.Health()
	if err != nil {
		fmt.Fprintf(os.Stderr, "coflowload: daemon unreachable at %s: %v\n", *target, err)
		os.Exit(1)
	}
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	logf("coflowload: target %s healthy (policy %s, sim clock %.2f)", *target, health.Policy, health.Now)

	report, err := server.RunLoad(c, server.LoadConfig{
		Coflows:      *coflows,
		Width:        *width,
		MeanSize:     *meanSize,
		MeanWeight:   *meanWeight,
		Rate:         *rate,
		Concurrency:  *concurrency,
		Seed:         *seed,
		WaitComplete: *wait,
		WaitTimeout:  *waitTimeout,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "coflowload:", err)
		if report != nil {
			fmt.Println(report)
		}
		os.Exit(1)
	}
	fmt.Println(report)

	if *wait {
		st, err := c.Stats()
		if err != nil {
			fmt.Fprintln(os.Stderr, "coflowload: fetching final stats:", err)
			os.Exit(1)
		}
		fmt.Printf("daemon: admitted=%d completed=%d weighted_cct=%.2f weighted_response=%.2f slowdown_p95=%.2f solve_ms_p95=%.3f\n",
			st.Admitted, st.Completed, st.WeightedCCT, st.WeightedResponse, st.SlowdownP95, st.SolveMsP95)
	}
	if report.Failures > 0 {
		os.Exit(1)
	}
}
