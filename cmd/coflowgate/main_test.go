package main

import (
	"context"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/server"
)

// TestRunFlagErrors: misconfiguration fails fast with a clear message.
func TestRunFlagErrors(t *testing.T) {
	cases := map[string][]string{
		"neither backends nor local": {},
		"both backends and local":    {"-backends", "http://x", "-local", "2"},
		"unknown placement":          {"-local", "1", "-placement", "round-robin"},
		"unknown policy":             {"-local", "1", "-policy", "wfq"},
		"unknown flag":               {"-bogus"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if err := run(context.Background(), args, io.Discard); err == nil {
				t.Errorf("run(%v) succeeded, want error", args)
			}
		})
	}
}

// TestRunLocalEndToEnd boots a 2-shard local gateway on a real listener,
// admits a coflow through it, and shuts down via context cancellation — the
// whole daemon lifecycle in one smoke test.
func TestRunLocalEndToEnd(t *testing.T) {
	// Grab a free port, then hand it to the daemon.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", addr, "-local", "2", "-timescale", "100"}, io.Discard)
	}()

	c := server.NewClient("http://" + addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.Health(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gateway never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}

	net0, err := c.Network()
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	if len(net0.Hosts) < 2 {
		t.Fatalf("gateway network has %d hosts", len(net0.Hosts))
	}
	resp, err := c.Admit(coflow.Coflow{
		Name:   "e2e",
		Weight: 1,
		Flows: []coflow.Flow{{
			Source: graph.NodeID(net0.Hosts[0]),
			Dest:   graph.NodeID(net0.Hosts[1]),
			Size:   1,
		}},
	})
	if err != nil {
		t.Fatalf("admit through gateway: %v", err)
	}
	if resp.ID != 0 {
		t.Errorf("gateway id = %d, want 0", resp.ID)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "closed") {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
