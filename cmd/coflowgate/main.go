// Command coflowgate is the cluster front door: a gateway that shards
// admitted coflows across N coflowd backends (each an independent fabric)
// and serves the same /v1/* JSON API as a single daemon by fanning out.
//
// Two topologies:
//
//	coflowgate -addr :8090 -backends http://s1:8080,http://s2:8080 -placement hash
//	coflowgate -addr :8090 -local 4 -policy sebf -timescale 10
//
// With -backends the gateway fronts already-running coflowd daemons (start
// them with distinct -shard labels so their /metrics stay distinguishable).
// With -local N it spins up N in-process shards on loopback listeners — the
// zero-setup way to run a whole cluster in one process, the same harness the
// tests and coflowbench -experiment cluster use.
//
// Endpoints are coflowd's, served by scatter-gather:
//
//	POST /v1/coflows       place on one shard (batched; consistent-hash or least-load)
//	GET  /v1/coflows/{id}  follows the coflow to its current shard
//	GET  /v1/schedule      merged residual priority orders (gateway ids)
//	GET  /v1/stats         merged objectives, counters and percentile reservoirs
//	GET  /v1/network       shard topology (all shards are built alike)
//	GET  /v1/backends      shard roster with health state
//	GET  /v1/epochs        every shard's recent scheduler epochs, side by side
//	GET  /healthz          gateway + shard health
//	GET  /metrics          coflowgate_* Prometheus text metrics, per-backend labelled
//	GET  /debug/traces     gateway-side lifecycle trace spans (join to shards by trace id)
//	GET  /debug/pprof/     runtime profiles
//
// Backends are health-checked; a failing shard is ejected with exponential
// re-probe backoff and its in-flight coflows are re-admitted on the
// survivors. On SIGINT/SIGTERM a -local gateway drains its shards and dumps
// the merged final statistics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"coflowsched/internal/cluster"
	"coflowsched/internal/online"
	"coflowsched/internal/stats"
	"coflowsched/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "coflowgate:", err)
		os.Exit(1)
	}
}

// run is main with injectable arguments and streams (smoke-testable without
// exec'ing a binary). It serves until ctx is cancelled.
func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("coflowgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr           = fs.String("addr", ":8090", "listen address")
		backends       = fs.String("backends", "", "comma-separated coflowd base URLs to front")
		local          = fs.Int("local", 0, "spin up this many in-process shards instead of -backends")
		placementName  = fs.String("placement", "hash", "shard placement: hash (consistent), least-load")
		batch          = fs.Int("batch", 16, "admit batch size (flush on this many pending admissions)")
		batchInterval  = fs.Duration("batch-interval", 5*time.Millisecond, "admit batch flush deadline")
		healthInterval = fs.Duration("health-interval", time.Second, "backend probe period")
		policyName     = fs.String("policy", "sebf", "shard policy for -local: sebf, fifo, lp")
		epochLen       = fs.Float64("epoch", 2.0, "shard epoch length for -local")
		timeScale      = fs.Float64("timescale", 1.0, "shard simulated time units per wall second for -local")
		fatK           = fs.Int("fatk", 4, "shard fat-tree arity for -local")
		stateDir       = fs.String("state-dir", "", "persist gateway routing state (WAL + snapshots) under this directory; with -local, shards get WALs under it too")
		snapInterval   = fs.Duration("snapshot-interval", 0, "state snapshot period (0 = default 30s with -state-dir, negative disables)")
		logLevel       = fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat      = fs.String("log-format", "text", "log output format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*backends == "") == (*local == 0) {
		return errors.New("exactly one of -backends or -local is required")
	}
	placement, err := cluster.ParsePlacement(*placementName)
	if err != nil {
		return err
	}
	logger := telemetry.NewLogger(stderr, telemetry.ParseLevel(*logLevel), *logFormat, "", "")
	gcfg := cluster.Config{
		Placement:        placement,
		HealthInterval:   *healthInterval,
		BatchSize:        *batch,
		BatchInterval:    *batchInterval,
		SnapshotInterval: *snapInterval,
		Logger:           logger,
	}
	if *stateDir != "" && *local == 0 {
		// Externally-run coflowds manage their own durability; the gateway
		// only persists its routing tables here. (-local wires the whole tree
		// below instead.)
		gcfg.StateDir = *stateDir
	}

	var g *cluster.Gateway
	var localCluster *cluster.Local
	if *local > 0 {
		policies := map[string]online.Policy{
			"sebf": online.SEBFOnline{},
			"fifo": online.FIFOOnline{},
			"lp":   online.LPEpoch{},
		}
		policy, ok := policies[*policyName]
		if !ok {
			return fmt.Errorf("unknown policy %q (want sebf, fifo, lp)", *policyName)
		}
		localCluster, err = cluster.NewLocal(cluster.LocalConfig{
			Shards:           *local,
			Policy:           policy,
			EpochLength:      *epochLen,
			TimeScale:        *timeScale,
			FatK:             *fatK,
			Gateway:          gcfg,
			WALDir:           *stateDir,
			SnapshotInterval: *snapInterval,
			Logger:           logger,
		})
		if err != nil {
			return err
		}
		defer localCluster.Close()
		g = localCluster.Gateway
		log.Printf("coflowgate: %d in-process shards (policy %s, k=%d fat-tree each)", *local, *policyName, *fatK)
	} else {
		g, err = cluster.New(gcfg)
		if err != nil {
			return err
		}
		defer g.Close()
		for i, url := range strings.Split(*backends, ",") {
			url = strings.TrimSpace(url)
			if url == "" {
				continue
			}
			if err := g.AddBackend(fmt.Sprintf("backend%d", i), url); err != nil {
				return err
			}
		}
		if len(g.Backends()) == 0 {
			return errors.New("-backends named no usable URLs")
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: g.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("coflowgate: listening on %s fronting %d backend(s), placement %s",
		*addr, len(g.Backends()), placement.Name())

	select {
	case <-ctx.Done():
		log.Printf("coflowgate: signal received, shutting down")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("coflowgate: http shutdown: %v", err)
	}
	if localCluster != nil {
		merged, err := localCluster.DrainAll()
		if err != nil {
			log.Printf("coflowgate: drain: %v", err)
		} else {
			dumpMerged(merged)
		}
	}
	return nil
}

// dumpMerged prints the end-of-run merged statistics the way coflowd does.
func dumpMerged(st online.EngineStats) {
	p := func(xs []float64, q float64) float64 { return stats.PercentileOr(xs, q, 0) }
	log.Printf("coflowgate: final: admitted=%d completed=%d epochs=%d decisions=%d",
		st.Admitted, st.Completed, st.Epochs, st.Decisions)
	log.Printf("coflowgate: final: weighted_cct=%.2f weighted_response=%.2f", st.WeightedCCT, st.WeightedResponse)
	log.Printf("coflowgate: final: slowdown p50/p95/p99 = %.2f/%.2f/%.2f",
		p(st.Slowdowns, 50), p(st.Slowdowns, 95), p(st.Slowdowns, 99))
}
