package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunFig1JSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-experiment", "fig1", "-json"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	var obj map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &obj); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, stdout.String())
	}
	if obj["experiment"] != "fig1" {
		t.Errorf("experiment = %v, want fig1", obj["experiment"])
	}
	if obj["result"] == nil {
		t.Errorf("missing result in %v", obj)
	}
}

func TestRunScenarioSweep(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scenario", "fb-trace"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -scenario fb-trace: %v", err)
	}
	out := stdout.String()
	if !strings.Contains(out, "ScenarioSweep") || !strings.Contains(out, "fb-trace") {
		t.Errorf("scenario sweep output missing expected tables:\n%s", out)
	}

	stdout.Reset()
	if err := run([]string{"-scenario", "fb-trace", "-json"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -scenario -json: %v", err)
	}
	var obj struct {
		Experiment string `json:"experiment"`
		Result     []struct {
			Scenario    string  `json:"scenario"`
			Policy      string  `json:"policy"`
			WeightedCCT float64 `json:"weighted_cct"`
		} `json:"result"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &obj); err != nil {
		t.Fatalf("-scenario -json output is not JSON: %v\n%s", err, stdout.String())
	}
	if obj.Experiment != "scenarios" || len(obj.Result) == 0 {
		t.Errorf("unexpected JSON payload: %+v", obj)
	}
	for _, r := range obj.Result {
		if r.Scenario != "fb-trace" || r.WeightedCCT <= 0 {
			t.Errorf("degenerate result cell: %+v", r)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-experiment", "fig99"}, &stdout, &stderr); err == nil {
		t.Errorf("unknown experiment accepted")
	}
	if err := run([]string{"-scenario", "no-such"}, &stdout, &stderr); err == nil {
		t.Errorf("unknown scenario accepted")
	}
	if err := run([]string{"-widths", "4,nope"}, &stdout, &stderr); err == nil {
		t.Errorf("malformed -widths accepted")
	}
}
