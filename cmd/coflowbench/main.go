// Command coflowbench regenerates the paper's tables and figures.
//
// Usage:
//
//	coflowbench -experiment all            # Figure 1, Table 1, Figures 3-4, ablations, online, sim
//	coflowbench -experiment fig3 -trials 5 # just Figure 3, 5 trials per point
//	coflowbench -experiment fig3 -paper    # the paper's 128-server configuration (slow)
//	coflowbench -experiment sim -json      # simulator hot-path micro-suite (incremental vs naive)
//	coflowbench -experiment sim -cpuprofile sim.prof  # profile the hot path for regression diagnosis
//
// Output is plain text: one absolute-value table and one ratio-to-baseline
// table per figure (the two panels of the paper's Figures 3 and 4), plus the
// average-improvement summary the paper quotes in §4.3. With -json, each
// experiment instead emits one machine-readable JSON object (one per line
// under -experiment all) carrying the experiment name, its configuration and
// the full result — the format benchmark trajectories are recorded in (see
// EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"coflowsched/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: fig1, table1, fig3, fig4, ablation, online, sim, all")
		paper      = flag.Bool("paper", false, "use the paper's full-scale configuration (128-server fat-tree, slow)")
		fatK       = flag.Int("fatk", 0, "fat-tree arity k (overrides the configuration; k=8 is the paper's 128 servers)")
		trials     = flag.Int("trials", 0, "trials per data point (override)")
		seed       = flag.Int64("seed", 0, "random seed (override)")
		coflows    = flag.Int("coflows", 0, "number of coflows for the width sweep (override)")
		widths     = flag.String("widths", "", "comma-separated coflow widths for fig3 (override)")
		counts     = flag.String("counts", "", "comma-separated coflow counts for fig4 (override)")
		width      = flag.Int("width", 0, "fixed coflow width for fig4 (override)")
		candidates = flag.Int("paths", 0, "candidate paths per flow for the LP (override)")
		csv        = flag.Bool("csv", false, "emit CSV instead of text tables for fig3/fig4")
		jsonOut    = flag.Bool("json", false, "emit one JSON result object per experiment")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile (pprof) covering the selected experiments to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (pprof) taken after the selected experiments to this file")
		noref      = flag.Bool("noref", false, "skip the naive reference allocator in -experiment sim (fast mode for large scales)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		exitOn(err)
		exitOn(pprof.StartCPUProfile(f))
		stopCPU := func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "coflowbench: cpuprofile:", err)
			}
		}
		flushProfiles = append(flushProfiles, stopCPU)
	}
	if *memprofile != "" {
		path := *memprofile
		flushProfiles = append(flushProfiles, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "coflowbench: memprofile:", err)
				return
			}
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "coflowbench: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "coflowbench: memprofile:", err)
			}
		})
	}
	defer finishProfiles()

	cfg := experiments.DefaultConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	if *fatK > 0 {
		cfg.FatK = *fatK
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *coflows > 0 {
		cfg.NumCoflows = *coflows
	}
	if *width > 0 {
		cfg.Width = *width
	}
	if *candidates > 0 {
		cfg.CandidatePaths = *candidates
	}
	if *widths != "" {
		cfg.Widths = parseInts(*widths)
	}
	if *counts != "" {
		cfg.CoflowCounts = parseInts(*counts)
	}

	run := func(name string) {
		switch name {
		case "fig1":
			res, err := experiments.Figure1()
			exitOn(err)
			if *jsonOut {
				emitJSON(name, nil, res)
				return
			}
			fmt.Println(res)
		case "table1":
			tcfg := experiments.DefaultTable1Config()
			res, err := experiments.Table1(tcfg)
			exitOn(err)
			if *jsonOut {
				emitJSON(name, tcfg, res)
				return
			}
			fmt.Println("Table 1: approximation guarantees and measured ratios (ALG / certified lower bound)")
			fmt.Println(res)
		case "fig3":
			res, err := experiments.Figure3(cfg)
			exitOn(err)
			if *jsonOut {
				emitJSON(name, cfg, res)
				return
			}
			printFigure(res, *csv)
		case "fig4":
			res, err := experiments.Figure4(cfg)
			exitOn(err)
			if *jsonOut {
				emitJSON(name, cfg, res)
				return
			}
			printFigure(res, *csv)
		case "ablation":
			acfg := experiments.DefaultAblationConfig()
			res, err := experiments.Ablation(acfg)
			exitOn(err)
			if *jsonOut {
				emitJSON(name, acfg, res)
				return
			}
			fmt.Println(res)
		case "online":
			ocfg := experiments.DefaultOnlineConfig()
			if *paper {
				ocfg = experiments.PaperOnlineConfig()
			}
			if *fatK > 0 {
				ocfg.FatK = *fatK
			}
			if *trials > 0 {
				ocfg.Trials = *trials
			}
			if *seed != 0 {
				ocfg.Seed = *seed
			}
			if *coflows > 0 {
				ocfg.NumCoflows = *coflows
			}
			if *width > 0 {
				ocfg.Width = *width
			}
			res, err := experiments.OnlineSweep(ocfg)
			exitOn(err)
			switch {
			case *jsonOut:
				emitJSON(name, ocfg, res)
			case *csv:
				fmt.Print(res.Absolute.CSV())
				fmt.Print(res.Ratio.CSV())
			default:
				fmt.Println(res)
			}
		case "sim":
			scfg := experiments.DefaultSimSuiteConfig()
			if *seed != 0 {
				scfg.Seed = *seed
			}
			if *trials > 0 {
				scfg.Trials = *trials
			}
			if *fatK > 0 {
				scfg.FatK = *fatK
			}
			if *noref {
				scfg.Reference = false
			}
			res, err := experiments.SimSuite(scfg)
			exitOn(err)
			if *jsonOut {
				emitJSON(name, scfg, res)
				return
			}
			fmt.Println("Simulator micro-suite: priority-policy Run, incremental vs naive reference")
			fmt.Print(res)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			finishProfiles()
			os.Exit(2)
		}
	}

	if *experiment == "all" {
		for _, name := range []string{"fig1", "table1", "fig3", "fig4", "ablation", "online", "sim"} {
			if !*jsonOut {
				fmt.Printf("=== %s ===\n", name)
			}
			run(name)
			if !*jsonOut {
				fmt.Println()
			}
		}
		return
	}
	run(*experiment)
}

// emitJSON writes one machine-readable result object: the experiment name,
// the configuration it ran with (null for parameterless experiments) and
// the full result. One object per line, so -experiment all yields JSON
// Lines that trajectory tooling can append to BENCH_*.json files.
func emitJSON(name string, config, result any) {
	enc := json.NewEncoder(os.Stdout)
	exitOn(enc.Encode(map[string]any{
		"experiment": name,
		"config":     config,
		"result":     result,
	}))
}

func printFigure(res *experiments.FigureResult, csv bool) {
	if csv {
		fmt.Print(res.Absolute.CSV())
		fmt.Print(res.Ratio.CSV())
		return
	}
	fmt.Println(res)
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		exitOn(err)
		out = append(out, v)
	}
	return out
}

// flushProfiles holds the finalizers for any active pprof outputs. They run
// both on the normal return path (deferred in main) and before error exits —
// os.Exit skips defers, and a truncated CPU profile is useless in exactly
// the failure-diagnosis scenario the flags exist for.
var (
	flushProfiles []func()
	flushOnce     sync.Once
)

func finishProfiles() {
	flushOnce.Do(func() {
		for _, f := range flushProfiles {
			f()
		}
	})
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "coflowbench:", err)
		finishProfiles()
		os.Exit(1)
	}
}
