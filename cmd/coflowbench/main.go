// Command coflowbench regenerates the paper's tables and figures.
//
// Usage:
//
//	coflowbench -experiment all            # Figure 1, Table 1, Figures 3-4, ablations, online, sim, scenarios
//	coflowbench -experiment fig3 -trials 5 # just Figure 3, 5 trials per point
//	coflowbench -experiment fig3 -paper    # the paper's 128-server configuration (slow)
//	coflowbench -experiment sim -json      # simulator hot-path micro-suite (incremental vs naive)
//	coflowbench -experiment sim -cpuprofile sim.prof  # profile the hot path for regression diagnosis
//	coflowbench -experiment cluster        # shard-count scaling through an in-process coflowgate
//	coflowbench -experiment cluster -shards 1,4 -coflows 400 -json
//	coflowbench -scenario all              # every registered workload scenario x online policy
//	coflowbench -scenario heavy-tail -json # one scenario, machine-readable
//
// Output is plain text: one absolute-value table and one ratio-to-baseline
// table per figure (the two panels of the paper's Figures 3 and 4), plus the
// average-improvement summary the paper quotes in §4.3. With -json, each
// experiment instead emits one machine-readable JSON object (one per line
// under -experiment all) carrying the experiment name, its configuration and
// the full result — the format benchmark trajectories are recorded in (see
// EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"coflowsched/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "coflowbench:", err)
		os.Exit(1)
	}
}

// profileFlusher collects the finalizers for active pprof outputs. They run
// on every exit path from run — a truncated CPU profile is useless in exactly
// the failure-diagnosis scenario the flags exist for.
type profileFlusher struct {
	fns  []func()
	once sync.Once
}

func (p *profileFlusher) finish() {
	p.once.Do(func() {
		for _, f := range p.fns {
			f()
		}
	})
}

// run is main with injectable arguments and streams (smoke-testable without
// exec'ing a binary).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coflowbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all", "which experiment to run: fig1, table1, fig3, fig4, ablation, online, sim, scenarios, cluster, all")
		shards     = fs.String("shards", "", "comma-separated shard counts for the cluster experiment (override)")
		placement  = fs.String("placement", "", "gateway placement for the cluster experiment: hash, least-load (override)")
		scenario   = fs.String("scenario", "", "run the scenario sweep for one registered scenario (or \"all\"); overrides -experiment")
		paper      = fs.Bool("paper", false, "use the paper's full-scale configuration (128-server fat-tree, slow)")
		fatK       = fs.Int("fatk", 0, "fat-tree arity k (overrides the configuration; k=8 is the paper's 128 servers)")
		trials     = fs.Int("trials", 0, "trials per data point (override)")
		seed       = fs.Int64("seed", 0, "random seed (override)")
		coflows    = fs.Int("coflows", 0, "number of coflows for the width sweep (override)")
		widths     = fs.String("widths", "", "comma-separated coflow widths for fig3 (override)")
		counts     = fs.String("counts", "", "comma-separated coflow counts for fig4 (override)")
		width      = fs.Int("width", 0, "fixed coflow width for fig4 (override)")
		candidates = fs.Int("paths", 0, "candidate paths per flow for the LP (override)")
		csv        = fs.Bool("csv", false, "emit CSV instead of text tables for fig3/fig4")
		jsonOut    = fs.Bool("json", false, "emit one JSON result object per experiment")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile (pprof) covering the selected experiments to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile (pprof) taken after the selected experiments to this file")
		noref      = fs.Bool("noref", false, "skip the naive reference allocator in -experiment sim (fast mode for large scales)")
		partitions = fs.Int("partitions", 0, "simulator partition classes for -experiment sim: 0 = auto (pod count capped at GOMAXPROCS), 1 = sequential core, N>1 = coalesce the pods into N classes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	profiles := &profileFlusher{}
	defer profiles.finish()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		profiles.fns = append(profiles.fns, func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "coflowbench: cpuprofile:", err)
			}
		})
	}
	if *memprofile != "" {
		path := *memprofile
		profiles.fns = append(profiles.fns, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(stderr, "coflowbench: memprofile:", err)
				return
			}
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "coflowbench: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "coflowbench: memprofile:", err)
			}
		})
	}

	cfg := experiments.DefaultConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	if *fatK > 0 {
		cfg.FatK = *fatK
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *coflows > 0 {
		cfg.NumCoflows = *coflows
	}
	if *width > 0 {
		cfg.Width = *width
	}
	if *candidates > 0 {
		cfg.CandidatePaths = *candidates
	}
	if *widths != "" {
		ws, err := parseInts(*widths)
		if err != nil {
			return err
		}
		cfg.Widths = ws
	}
	if *counts != "" {
		cs, err := parseInts(*counts)
		if err != nil {
			return err
		}
		cfg.CoflowCounts = cs
	}

	emitJSON := func(name string, config, result any) error {
		enc := json.NewEncoder(stdout)
		return enc.Encode(map[string]any{
			"experiment": name,
			"config":     config,
			"result":     result,
		})
	}

	runScenarios := func(names []string) error {
		scfg := experiments.DefaultScenarioConfig()
		scfg.Scenarios = names
		res, err := experiments.ScenarioSweep(scfg)
		if err != nil {
			return err
		}
		switch {
		case *jsonOut:
			return emitJSON("scenarios", scfg, res.Results)
		case *csv:
			fmt.Fprint(stdout, res.Absolute.CSV())
			fmt.Fprint(stdout, res.Ratio.CSV())
		default:
			fmt.Fprintln(stdout, res)
		}
		return nil
	}

	if *scenario != "" {
		if *scenario == "all" {
			return runScenarios(nil)
		}
		return runScenarios([]string{*scenario})
	}

	runOne := func(name string) error {
		switch name {
		case "fig1":
			res, err := experiments.Figure1()
			if err != nil {
				return err
			}
			if *jsonOut {
				return emitJSON(name, nil, res)
			}
			fmt.Fprintln(stdout, res)
		case "table1":
			tcfg := experiments.DefaultTable1Config()
			res, err := experiments.Table1(tcfg)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emitJSON(name, tcfg, res)
			}
			fmt.Fprintln(stdout, "Table 1: approximation guarantees and measured ratios (ALG / certified lower bound)")
			fmt.Fprintln(stdout, res)
		case "fig3":
			res, err := experiments.Figure3(cfg)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emitJSON(name, cfg, res)
			}
			printFigure(stdout, res, *csv)
		case "fig4":
			res, err := experiments.Figure4(cfg)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emitJSON(name, cfg, res)
			}
			printFigure(stdout, res, *csv)
		case "ablation":
			acfg := experiments.DefaultAblationConfig()
			res, err := experiments.Ablation(acfg)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emitJSON(name, acfg, res)
			}
			fmt.Fprintln(stdout, res)
		case "online":
			ocfg := experiments.DefaultOnlineConfig()
			if *paper {
				ocfg = experiments.PaperOnlineConfig()
			}
			if *fatK > 0 {
				ocfg.FatK = *fatK
			}
			if *trials > 0 {
				ocfg.Trials = *trials
			}
			if *seed != 0 {
				ocfg.Seed = *seed
			}
			if *coflows > 0 {
				ocfg.NumCoflows = *coflows
			}
			if *width > 0 {
				ocfg.Width = *width
			}
			res, err := experiments.OnlineSweep(ocfg)
			if err != nil {
				return err
			}
			switch {
			case *jsonOut:
				return emitJSON(name, ocfg, res)
			case *csv:
				fmt.Fprint(stdout, res.Absolute.CSV())
				fmt.Fprint(stdout, res.Ratio.CSV())
			default:
				fmt.Fprintln(stdout, res)
			}
		case "sim":
			scfg := experiments.DefaultSimSuiteConfig()
			if *seed != 0 {
				scfg.Seed = *seed
			}
			if *trials > 0 {
				scfg.Trials = *trials
			}
			if *fatK > 0 {
				scfg.FatK = *fatK
			}
			if *noref {
				scfg.Reference = false
			}
			scfg.Partitions = *partitions
			res, err := experiments.SimSuite(scfg)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emitJSON(name, scfg, res)
			}
			fmt.Fprintln(stdout, "Simulator micro-suite: priority-policy Run, incremental vs naive reference")
			fmt.Fprint(stdout, res)
		case "scenarios":
			return runScenarios(nil)
		case "cluster":
			ccfg := experiments.DefaultClusterConfig()
			if *shards != "" {
				ss, err := parseInts(*shards)
				if err != nil {
					return err
				}
				ccfg.ShardCounts = ss
			}
			if *placement != "" {
				ccfg.Placement = *placement
			}
			if *coflows > 0 {
				ccfg.Coflows = *coflows
			}
			if *width > 0 {
				ccfg.Width = *width
			}
			if *seed != 0 {
				ccfg.Seed = *seed
			}
			if *fatK > 0 {
				ccfg.FatK = *fatK
			}
			res, err := experiments.ClusterSweep(ccfg)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emitJSON(name, ccfg, res)
			}
			fmt.Fprintln(stdout, "Cluster scaling: identical workload through coflowgate, growing shard counts")
			fmt.Fprint(stdout, res)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if *experiment == "all" {
		for _, name := range []string{"fig1", "table1", "fig3", "fig4", "ablation", "online", "sim", "scenarios", "cluster"} {
			if !*jsonOut {
				fmt.Fprintf(stdout, "=== %s ===\n", name)
			}
			if err := runOne(name); err != nil {
				return err
			}
			if !*jsonOut {
				fmt.Fprintln(stdout)
			}
		}
		return nil
	}
	return runOne(*experiment)
}

func printFigure(w io.Writer, res *experiments.FigureResult, csv bool) {
	if csv {
		fmt.Fprint(w, res.Absolute.CSV())
		fmt.Fprint(w, res.Ratio.CSV())
		return
	}
	fmt.Fprintln(w, res)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
