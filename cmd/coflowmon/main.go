// Command coflowmon is the cluster's monitoring daemon: it scrapes coflowd
// and coflowgate /metrics pages into bounded in-memory time-series,
// evaluates multi-window burn-rate SLO rules over them, and on a rule's
// transition to firing writes a flight-recorder post-mortem bundle joining
// recent time-series, lifecycle traces, scheduler epoch records, and an
// on-alert CPU profile plus heap snapshot from every live target.
//
//	coflowmon -addr :8099 -discover http://localhost:8090 -bundle-dir ./bundles
//	coflowmon -addr :8099 -targets shard0=http://s0:8080,shard1=http://s1:8080
//
// With -discover the gateway is scraped as instance "gateway" and its
// /v1/backends roster is re-read every interval, so shards joining or
// leaving the rotation are picked up automatically. -targets names
// endpoints statically (name=url pairs, or bare URLs which are named
// target0, target1, ...); both can be combined.
//
// Endpoints:
//
//	GET /            single-page health dashboard
//	GET /v1/targets  per-target scrape status
//	GET /v1/query    range queries: ?metric=&view=raw|last|rate|quantile&q=&since=&l.<label>=<v>
//	GET /v1/slo      SLO rule states, burn rates and written bundle index
//	GET /v1/stages   per-stage admit-pipeline and partition latency breakdown
//	GET /metrics     coflowmon's own exposition
//	GET /healthz     liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"coflowsched/internal/monitor"
	"coflowsched/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "coflowmon:", err)
		os.Exit(1)
	}
}

// run is main with injectable arguments and streams (smoke-testable without
// exec'ing a binary). It serves until ctx is cancelled.
func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("coflowmon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8099", "listen address")
		targets   = fs.String("targets", "", "comma-separated scrape targets: name=url pairs or bare URLs")
		discover  = fs.String("discover", "", "coflowgate base URL; scrape it and its /v1/backends roster")
		interval  = fs.Duration("interval", time.Second, "scrape and rule-evaluation period")
		bundleDir = fs.String("bundle-dir", "", "write flight-recorder bundles here on firing transitions (empty disables)")
		profDur   = fs.Duration("profile-duration", time.Second, "on-alert CPU profile sampling window; negative disables profile capture")
		maxPoints = fs.Int("max-points", monitor.DefaultMaxPoints, "retained points per series")
		logLevel  = fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat = fs.String("log-format", "text", "log output format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parsed, err := parseTargets(*targets)
	if err != nil {
		return err
	}
	if len(parsed) == 0 && *discover == "" {
		return errors.New("at least one of -targets or -discover is required")
	}
	logger := telemetry.NewLogger(stderr, telemetry.ParseLevel(*logLevel), *logFormat, "coflowmon", "")
	m, err := monitor.New(monitor.Config{
		Targets:         parsed,
		DiscoverURL:     *discover,
		Interval:        *interval,
		MaxPoints:       *maxPoints,
		BundleDir:       *bundleDir,
		ProfileDuration: *profDur,
		Logger:          logger,
	})
	if err != nil {
		return err
	}
	defer m.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: m.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("coflowmon: listening on %s, %d static target(s), discover=%q, interval %s",
		*addr, len(parsed), *discover, *interval)

	select {
	case <-ctx.Done():
		log.Printf("coflowmon: signal received, shutting down")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("coflowmon: http shutdown: %v", err)
	}
	return nil
}

// parseTargets decodes the -targets flag: name=url pairs, or bare URLs which
// are auto-named target0, target1, ...
func parseTargets(s string) ([]monitor.Target, error) {
	var out []monitor.Target
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, url, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			if name == "" || url == "" {
				return nil, fmt.Errorf("bad target %q (want name=url)", part)
			}
			out = append(out, monitor.Target{Name: name, URL: url})
			continue
		}
		out = append(out, monitor.Target{Name: fmt.Sprintf("target%d", i), URL: part})
	}
	return out, nil
}
