package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"coflowsched/internal/monitor"
	"coflowsched/internal/telemetry"
)

func TestParseTargets(t *testing.T) {
	got, err := parseTargets("shard0=http://a:1, http://b:2 ,gw=http://c:3")
	if err != nil {
		t.Fatalf("parseTargets: %v", err)
	}
	want := []monitor.Target{
		{Name: "shard0", URL: "http://a:1"},
		{Name: "target1", URL: "http://b:2"},
		{Name: "gw", URL: "http://c:3"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseTargets = %+v, want %+v", got, want)
	}
	if _, err := parseTargets("=http://x"); err == nil {
		t.Error("empty name accepted")
	}
}

// TestRunFlagErrors: misconfiguration fails fast with a clear message.
func TestRunFlagErrors(t *testing.T) {
	cases := map[string][]string{
		"no targets":   {},
		"bad target":   {"-targets", "=http://x"},
		"unknown flag": {"-bogus"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if err := run(context.Background(), args, io.Discard); err == nil {
				t.Errorf("run(%v) succeeded, want error", args)
			}
		})
	}
}

// TestRunEndToEnd boots the daemon against a fake scrape target, waits for
// the first scrape to land, queries the API, and shuts down via context
// cancellation.
func TestRunEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("coflowd_up", "").Set(1)
	target := httptest.NewServer(reg.Handler())
	t.Cleanup(target.Close)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", addr,
			"-targets", "shard0=" + target.URL,
			"-interval", "50ms",
		}, io.Discard)
	}()

	var tgts struct {
		Targets []monitor.TargetStatus `json:"targets"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/v1/targets")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&tgts)
			resp.Body.Close()
		}
		if err == nil && len(tgts.Targets) == 1 && tgts.Targets[0].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("monitor never scraped the target: %+v err=%v", tgts, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	var slo struct {
		Rules []monitor.RuleStatus `json:"rules"`
	}
	resp, err := http.Get("http://" + addr + "/v1/slo")
	if err != nil {
		t.Fatalf("slo: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&slo); err != nil {
		t.Fatalf("decode slo: %v", err)
	}
	resp.Body.Close()
	if len(slo.Rules) == 0 {
		t.Fatal("daemon runs no default rules")
	}
	for _, r := range slo.Rules {
		if r.State == monitor.StateFiring {
			t.Errorf("rule %s firing on a healthy target", r.Rule.Name)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
