// Command coflowgen generates coflow workload instances and writes them as
// JSON for coflowsim to consume: either the paper's §4.1 random methodology
// (Poisson flow sizes, release times and coflow weights over a datacenter
// topology) or a named scenario from the registry (trace replay, heavy-tail,
// incast, fan-in/out, diurnal — see EXPERIMENTS.md).
//
// Examples:
//
//	coflowgen -topology fattree -fatk 4 -coflows 10 -width 16 -seed 3 > workload.json
//	coflowgen -scenario heavy-tail > heavytail.json
//	coflowgen -list-scenarios
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "coflowgen:", err)
		os.Exit(1)
	}
}

// run is main with injectable arguments and streams, so the smoke tests can
// drive the whole command without exec'ing a binary.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coflowgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		topology    = fs.String("topology", "fattree", "topology: fattree, star, ring, line, grid, triangle (random mode)")
		fatK        = fs.Int("fatk", 4, "fat-tree arity (random mode)")
		nodes       = fs.Int("nodes", 8, "node count for star/ring/line/grid topologies (random mode)")
		coflows     = fs.Int("coflows", 10, "number of coflows (random mode)")
		width       = fs.Int("width", 16, "flows per coflow (random mode)")
		meanSize    = fs.Float64("size", 4, "mean flow size (Poisson, random mode)")
		meanRelease = fs.Float64("release", 2, "mean flow release time (Poisson, random mode)")
		meanWeight  = fs.Float64("weight", 1, "mean coflow weight (Poisson, random mode)")
		packet      = fs.Bool("packet", false, "packet model: force all sizes to 1 (random mode)")
		withPaths   = fs.Bool("with-paths", false, "pre-assign shortest paths (\"paths given\" variants)")
		seed        = fs.Int64("seed", 1, "random seed (random mode)")
		out         = fs.String("o", "", "output file (default stdout)")
		scenario    = fs.String("scenario", "", "emit a named scenario from the registry instead of the random workload (see -list-scenarios); scenarios fix their own topology, shape and seed")
		list        = fs.Bool("list-scenarios", false, "list registered scenarios and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// A scenario bundles its own topology, shape and seed; silently ignoring
	// an explicit random-mode flag would hand the user a workload they did
	// not ask for (e.g. -scenario x -seed 42 emitting the seed-7 draw).
	if *scenario != "" {
		randomModeFlags := map[string]bool{
			"topology": true, "fatk": true, "nodes": true, "coflows": true,
			"width": true, "size": true, "release": true, "weight": true,
			"packet": true, "seed": true,
		}
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			if randomModeFlags[f.Name] {
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-scenario fixes the workload; random-mode flags %s have no effect (drop them or drop -scenario)", strings.Join(conflict, ", "))
		}
	}

	if *list {
		for _, s := range workload.Scenarios() {
			fmt.Fprintf(stdout, "%-12s %s\n", s.Name, s.Description)
		}
		return nil
	}

	var inst *coflow.Instance
	var err error
	if *scenario != "" {
		sc, ok := workload.LookupScenario(*scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q (have %v)", *scenario, workload.ScenarioNames())
		}
		inst, _, err = sc.Build()
		if err != nil {
			return err
		}
		if *withPaths {
			if err := inst.AssignShortestPaths(); err != nil {
				return err
			}
		}
	} else {
		var g *graph.Graph
		switch *topology {
		case "fattree":
			g = graph.FatTree(*fatK, 1)
		case "star":
			g = graph.Star(*nodes, 1)
		case "ring":
			g = graph.Ring(*nodes, 1)
		case "line":
			g = graph.Line(*nodes, 1)
		case "grid":
			g = graph.Grid(*nodes, *nodes, 1)
		case "triangle":
			g = graph.Triangle()
		default:
			return fmt.Errorf("unknown topology %q", *topology)
		}
		rng := rand.New(rand.NewSource(*seed))
		cfg := workload.Config{
			NumCoflows: *coflows, Width: *width,
			MeanSize: *meanSize, MeanRelease: *meanRelease, MeanWeight: *meanWeight,
			PacketModel: *packet,
		}
		if *withPaths {
			inst, err = workload.GenerateWithPaths(g, cfg, rng)
		} else {
			inst, err = workload.Generate(g, cfg, rng)
		}
		if err != nil {
			return err
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return inst.WriteJSON(w)
}
