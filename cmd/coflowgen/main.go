// Command coflowgen generates random coflow workload instances (the paper's
// §4.1 methodology: Poisson flow sizes, release times and coflow weights over
// a datacenter topology) and writes them as JSON for coflowsim to consume.
//
// Example:
//
//	coflowgen -topology fattree -fatk 4 -coflows 10 -width 16 -seed 3 > workload.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"coflowsched/internal/coflow"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

func main() {
	var (
		topology    = flag.String("topology", "fattree", "topology: fattree, star, ring, line, grid, triangle")
		fatK        = flag.Int("fatk", 4, "fat-tree arity")
		nodes       = flag.Int("nodes", 8, "node count for star/ring/line/grid topologies")
		coflows     = flag.Int("coflows", 10, "number of coflows")
		width       = flag.Int("width", 16, "flows per coflow")
		meanSize    = flag.Float64("size", 4, "mean flow size (Poisson)")
		meanRelease = flag.Float64("release", 2, "mean flow release time (Poisson)")
		meanWeight  = flag.Float64("weight", 1, "mean coflow weight (Poisson)")
		packet      = flag.Bool("packet", false, "packet model: force all sizes to 1")
		withPaths   = flag.Bool("with-paths", false, "pre-assign shortest paths (\"paths given\" variants)")
		seed        = flag.Int64("seed", 1, "random seed")
		out         = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	switch *topology {
	case "fattree":
		g = graph.FatTree(*fatK, 1)
	case "star":
		g = graph.Star(*nodes, 1)
	case "ring":
		g = graph.Ring(*nodes, 1)
	case "line":
		g = graph.Line(*nodes, 1)
	case "grid":
		g = graph.Grid(*nodes, *nodes, 1)
	case "triangle":
		g = graph.Triangle()
	default:
		fmt.Fprintf(os.Stderr, "coflowgen: unknown topology %q\n", *topology)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	cfg := workload.Config{
		NumCoflows: *coflows, Width: *width,
		MeanSize: *meanSize, MeanRelease: *meanRelease, MeanWeight: *meanWeight,
		PacketModel: *packet,
	}
	var inst *coflow.Instance
	var err error
	if *withPaths {
		inst, err = workload.GenerateWithPaths(g, cfg, rng)
	} else {
		inst, err = workload.Generate(g, cfg, rng)
	}
	exitOn(err)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		exitOn(err)
		defer f.Close()
		w = f
	}
	exitOn(inst.WriteJSON(w))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "coflowgen:", err)
		os.Exit(1)
	}
}
