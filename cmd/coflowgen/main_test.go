package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coflowsched/internal/coflow"
)

func TestRunGeneratesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-topology", "line", "-nodes", "4", "-coflows", "2", "-width", "2", "-seed", "7", "-o", out}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("opening output: %v", err)
	}
	defer f.Close()
	inst, err := coflow.ReadJSON(f)
	if err != nil {
		t.Fatalf("output is not a valid instance: %v", err)
	}
	if len(inst.Coflows) != 2 {
		t.Errorf("got %d coflows, want 2", len(inst.Coflows))
	}
	if err := inst.Validate(false); err != nil {
		t.Errorf("generated instance invalid: %v", err)
	}
}

func TestRunScenario(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scenario", "incast"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -scenario incast: %v", err)
	}
	inst, err := coflow.ReadJSON(&stdout)
	if err != nil {
		t.Fatalf("scenario output is not a valid instance: %v", err)
	}
	if len(inst.Coflows) == 0 {
		t.Errorf("scenario emitted no coflows")
	}
}

func TestRunListScenarios(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list-scenarios"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -list-scenarios: %v", err)
	}
	for _, want := range []string{"uniform", "heavy-tail", "fb-trace"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("listing missing scenario %q:\n%s", want, stdout.String())
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-topology", "mobius-strip"}, &stdout, &stderr); err == nil {
		t.Errorf("unknown topology accepted")
	}
	if err := run([]string{"-scenario", "no-such"}, &stdout, &stderr); err == nil {
		t.Errorf("unknown scenario accepted")
	}
	if err := run([]string{"-scenario", "uniform", "-seed", "42"}, &stdout, &stderr); err == nil {
		t.Errorf("-scenario with a conflicting random-mode flag accepted")
	}
	if err := run([]string{"-not-a-flag"}, &stdout, &stderr); err == nil {
		t.Errorf("unknown flag accepted")
	}
}
