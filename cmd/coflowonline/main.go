// Command coflowonline streams a Poisson coflow arrival process through the
// online epoch scheduler (internal/online) and reports weighted completion
// time, slowdown percentiles and per-epoch solve latency per policy.
//
// Examples:
//
//	coflowonline -policy lp -arrival-rate 2.0
//	coflowonline -policy all -arrival-rate 4 -coflows 20 -epoch 1.5
//	coflowonline -policy sebf -csv            # machine-readable output
//
// With -csv the command emits one header row plus one row per policy; with
// -quiet it emits one compact summary line per policy. Both modes exist so
// CI and scripts can consume results without parsing text tables.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"coflowsched/internal/baselines"
	"coflowsched/internal/core"
	"coflowsched/internal/graph"
	"coflowsched/internal/online"
	"coflowsched/internal/stats"
	"coflowsched/internal/workload"
)

func main() {
	var (
		policyName  = flag.String("policy", "lp", "policy: lp, lp-sync, sebf, fifo, oracle, all")
		arrivalRate = flag.Float64("arrival-rate", 2.0, "mean coflow arrivals per time unit (Poisson process)")
		epochLen    = flag.Float64("epoch", 2.0, "epoch length (time between policy re-decisions)")
		fatK        = flag.Int("fatk", 4, "fat-tree arity")
		coflows     = flag.Int("coflows", 10, "number of coflows to stream")
		width       = flag.Int("width", 3, "flows per coflow")
		meanSize    = flag.Float64("size", 4, "mean flow size")
		meanWeight  = flag.Float64("weight", 1, "mean coflow weight")
		seed        = flag.Int64("seed", 1, "random seed")
		workers     = flag.Int("workers", 2, "solver worker-pool size for pipelined policies")
		validate    = flag.Bool("validate", true, "validate the produced schedule against the instance")
		quiet       = flag.Bool("quiet", false, "one summary line per policy (no banner, no tables)")
		csv         = flag.Bool("csv", false, "CSV output (header + one row per policy)")
	)
	flag.Parse()

	g := graph.FatTree(*fatK, 1)
	rng := rand.New(rand.NewSource(*seed))
	inst, arrivals, err := workload.GenerateArrivals(g, workload.ArrivalConfig{
		Config: workload.Config{
			NumCoflows: *coflows,
			Width:      *width,
			MeanSize:   *meanSize,
			MeanWeight: *meanWeight,
		},
		Rate: *arrivalRate,
	}, rng)
	exitOn(err)

	if !*quiet && !*csv {
		fmt.Printf("instance: %s, %d coflows x %d flows, arrival rate %.2f (last arrival %.2f), epoch %.2f\n",
			g, len(inst.Coflows), *width, *arrivalRate, arrivals[len(arrivals)-1], *epochLen)
	}

	policies := map[string]online.Policy{
		"lp":      online.LPEpoch{},
		"lp-sync": online.LPEpoch{Sync: true},
		"sebf":    online.SEBFOnline{},
		"fifo":    online.FIFOOnline{},
		"oracle":  online.NewOracle(core.CircuitFreePaths{Opts: core.Options{CandidatePaths: 4}}),
	}

	var names []string
	if *policyName == "all" {
		names = []string{"oracle", "lp", "sebf", "fifo"}
	} else {
		if _, ok := policies[*policyName]; !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q (want lp, lp-sync, sebf, fifo, oracle, all)\n", *policyName)
			os.Exit(2)
		}
		names = []string{*policyName}
	}
	// The oracle's full-instance LP is slow; fall back to offline SEBF as
	// the hindsight reference for larger streams.
	if *coflows > 12 {
		policies["oracle"] = online.NewOracle(baselines.SEBF{})
	}

	if *csv {
		fmt.Println("policy,arrival_rate,epochs,weighted_cct,weighted_response,makespan," +
			"slowdown_p50,slowdown_p95,slowdown_p99,solve_ms_p50,solve_ms_p95,solve_ms_p99,solve_overlap_ms")
	}
	for _, name := range names {
		p := policies[name]
		res, err := online.Run(inst, p, online.Config{
			EpochLength: *epochLen,
			Workers:     *workers,
			Seed:        *seed,
		})
		exitOn(err)
		if *validate {
			exitOn(res.Schedule.Validate(inst))
		}
		report(res, *arrivalRate, *quiet, *csv)
	}
}

func report(res *online.Result, rate float64, quiet, csv bool) {
	solveMs := res.SolveLatencies()
	for i := range solveMs {
		solveMs[i] *= 1e3
	}
	// stats.Percentile is NaN on empty input; report 0 so CSV consumers see
	// a number.
	pct := func(xs []float64, p float64) float64 { return stats.PercentileOr(xs, p, 0) }
	sp50, sp95, sp99 := pct(res.Slowdown, 50), pct(res.Slowdown, 95), pct(res.Slowdown, 99)
	lp50, lp95, lp99 := pct(solveMs, 50), pct(solveMs, 95), pct(solveMs, 99)
	overlapMs := res.TotalSolveOverlap().Seconds() * 1e3

	switch {
	case csv:
		fmt.Printf("%s,%g,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			res.Policy, rate, len(res.Epochs), res.WeightedCCT, res.WeightedResponse, res.Makespan,
			sp50, sp95, sp99, lp50, lp95, lp99, overlapMs)
	case quiet:
		fmt.Printf("%s rate=%g cct=%.2f response=%.2f makespan=%.2f slowdown_p95=%.2f solve_p95_ms=%.3f\n",
			res.Policy, rate, res.WeightedCCT, res.WeightedResponse, res.Makespan, sp95, lp95)
	default:
		fmt.Printf("%-22s weighted CCT = %10.2f  weighted response = %10.2f  makespan = %8.2f\n",
			res.Policy, res.WeightedCCT, res.WeightedResponse, res.Makespan)
		fmt.Printf("%-22s epochs = %d  slowdown p50/p95/p99 = %.2f/%.2f/%.2f\n",
			"", len(res.Epochs), sp50, sp95, sp99)
		if len(solveMs) > 0 {
			fmt.Printf("%-22s epoch solve latency p50/p95/p99 = %.3f/%.3f/%.3f ms  (overlapped with sim: %.3f ms)\n",
				"", lp50, lp95, lp99, overlapMs)
		}
		line := strings.Repeat("-", 86)
		fmt.Println(line)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "coflowonline:", err)
		os.Exit(1)
	}
}
