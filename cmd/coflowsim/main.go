// Command coflowsim runs a single scheduler on a single coflow instance and
// prints the resulting total weighted completion time (and, for the LP-based
// schedulers, the certified lower bound).
//
// The instance is either generated randomly (-topology/-coflows/-width/...)
// or read from a JSON file produced by coflowgen (-instance file.json).
//
// Examples:
//
//	coflowsim -scheduler lp -topology fattree -fatk 4 -coflows 5 -width 4
//	coflowsim -scheduler all -instance workload.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"coflowsched/internal/baselines"
	"coflowsched/internal/coflow"
	"coflowsched/internal/core"
	"coflowsched/internal/experiments"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

func main() {
	var (
		schedulerName = flag.String("scheduler", "lp", "scheduler: lp, lp-exact, lp-given, route-only, schedule-only, sebf, fair, baseline, all")
		instancePath  = flag.String("instance", "", "JSON instance file (from coflowgen); omit to generate randomly")
		topology      = flag.String("topology", "fattree", "topology for generated instances: fattree, star, ring, line, grid, triangle")
		fatK          = flag.Int("fatk", 4, "fat-tree arity")
		nodes         = flag.Int("nodes", 8, "node count for star/ring/line topologies")
		coflows       = flag.Int("coflows", 5, "number of coflows")
		width         = flag.Int("width", 4, "flows per coflow")
		meanSize      = flag.Float64("size", 4, "mean flow size")
		meanRelease   = flag.Float64("release", 2, "mean release time")
		meanWeight    = flag.Float64("weight", 1, "mean coflow weight")
		seed          = flag.Int64("seed", 1, "random seed")
		candidates    = flag.Int("paths", 4, "candidate paths per flow for the LP schedulers")
		validate      = flag.Bool("validate", true, "validate the produced schedule")
	)
	flag.Parse()

	inst, err := loadOrGenerate(*instancePath, *topology, *fatK, *nodes, *coflows, *width, *meanSize, *meanRelease, *meanWeight, *seed)
	exitOn(err)

	fmt.Printf("instance: %s, %d coflows, %d flows, total size %.0f\n",
		inst.Network, len(inst.Coflows), inst.NumFlows(), inst.TotalSize())

	schedulers := map[string]experiments.Scheduler{
		"lp":            core.CircuitFreePaths{Opts: core.Options{CandidatePaths: *candidates}},
		"lp-exact":      core.CircuitFreePathsExact{},
		"route-only":    baselines.RouteOnly{},
		"schedule-only": baselines.ScheduleOnly{},
		"sebf":          baselines.SEBF{},
		"fair":          baselines.FairSharing{},
		"baseline":      baselines.Baseline{},
	}

	runOne := func(name string, s experiments.Scheduler) {
		rng := rand.New(rand.NewSource(*seed + 1))
		cs, err := s.Schedule(inst, rng)
		exitOn(err)
		if *validate {
			exitOn(cs.Validate(inst))
		}
		fmt.Printf("%-15s total weighted completion time = %.2f (makespan %.2f)\n",
			s.Name(), cs.Objective(inst), cs.Makespan())
	}

	switch *schedulerName {
	case "all":
		order := []string{"lp", "route-only", "schedule-only", "sebf", "fair", "baseline"}
		for _, name := range order {
			runOne(name, schedulers[name])
		}
	case "lp-given":
		exitOn(inst.AssignShortestPaths())
		res, err := (core.CircuitGivenPaths{}).ScheduleASAP(inst)
		exitOn(err)
		if *validate {
			exitOn(res.Schedule.Validate(inst))
		}
		fmt.Printf("%-15s total weighted completion time = %.2f (LP lower bound %.2f, ratio %.2f)\n",
			"LP (given paths)", res.Objective(inst), core.CombinedLowerBound(inst, res), res.ApproximationRatio(inst))
	case "lp":
		// Run via the rich API so the lower bound can be reported.
		res, err := (core.CircuitFreePaths{Opts: core.Options{CandidatePaths: *candidates}}).ScheduleASAP(inst, rand.New(rand.NewSource(*seed+1)))
		exitOn(err)
		if *validate {
			exitOn(res.Schedule.Validate(inst))
		}
		lb := core.CombinedLowerBound(inst, res)
		fmt.Printf("%-15s total weighted completion time = %.2f (certified lower bound %.2f, ratio %.2f)\n",
			"LP-Based", res.Objective(inst), lb, res.Objective(inst)/lb)
	default:
		s, ok := schedulers[*schedulerName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *schedulerName)
			os.Exit(2)
		}
		runOne(*schedulerName, s)
	}
}

func loadOrGenerate(path, topology string, fatK, nodes, coflows, width int, meanSize, meanRelease, meanWeight float64, seed int64) (*coflow.Instance, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return coflow.ReadJSON(f)
	}
	var g *graph.Graph
	switch topology {
	case "fattree":
		g = graph.FatTree(fatK, 1)
	case "star":
		g = graph.Star(nodes, 1)
	case "ring":
		g = graph.Ring(nodes, 1)
	case "line":
		g = graph.Line(nodes, 1)
	case "grid":
		g = graph.Grid(nodes, nodes, 1)
	case "triangle":
		g = graph.Triangle()
	default:
		return nil, fmt.Errorf("unknown topology %q", topology)
	}
	rng := rand.New(rand.NewSource(seed))
	return workload.Generate(g, workload.Config{
		NumCoflows: coflows, Width: width,
		MeanSize: meanSize, MeanRelease: meanRelease, MeanWeight: meanWeight,
	}, rng)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "coflowsim:", err)
		os.Exit(1)
	}
}
