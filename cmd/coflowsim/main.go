// Command coflowsim runs a single scheduler on a single coflow instance and
// prints the resulting total weighted completion time (and, for the LP-based
// schedulers, the certified lower bound).
//
// The instance is either generated randomly (-topology/-coflows/-width/...)
// or read from a JSON file produced by coflowgen (-instance file.json).
//
// Examples:
//
//	coflowsim -scheduler lp -topology fattree -fatk 4 -coflows 5 -width 4
//	coflowsim -scheduler all -instance workload.json
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"coflowsched/internal/baselines"
	"coflowsched/internal/coflow"
	"coflowsched/internal/core"
	"coflowsched/internal/experiments"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "coflowsim:", err)
		os.Exit(1)
	}
}

// run is main with injectable arguments and streams (smoke-testable without
// exec'ing a binary).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coflowsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		schedulerName = fs.String("scheduler", "lp", "scheduler: lp, lp-exact, lp-given, route-only, schedule-only, sebf, fair, baseline, all")
		instancePath  = fs.String("instance", "", "JSON instance file (from coflowgen); omit to generate randomly")
		topology      = fs.String("topology", "fattree", "topology for generated instances: fattree, star, ring, line, grid, triangle")
		fatK          = fs.Int("fatk", 4, "fat-tree arity")
		nodes         = fs.Int("nodes", 8, "node count for star/ring/line topologies")
		coflows       = fs.Int("coflows", 5, "number of coflows")
		width         = fs.Int("width", 4, "flows per coflow")
		meanSize      = fs.Float64("size", 4, "mean flow size")
		meanRelease   = fs.Float64("release", 2, "mean release time")
		meanWeight    = fs.Float64("weight", 1, "mean coflow weight")
		seed          = fs.Int64("seed", 1, "random seed")
		candidates    = fs.Int("paths", 4, "candidate paths per flow for the LP schedulers")
		validate      = fs.Bool("validate", true, "validate the produced schedule")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	inst, err := loadOrGenerate(*instancePath, *topology, *fatK, *nodes, *coflows, *width, *meanSize, *meanRelease, *meanWeight, *seed)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "instance: %s, %d coflows, %d flows, total size %.0f\n",
		inst.Network, len(inst.Coflows), inst.NumFlows(), inst.TotalSize())

	schedulers := map[string]experiments.Scheduler{
		"lp":            core.CircuitFreePaths{Opts: core.Options{CandidatePaths: *candidates}},
		"lp-exact":      core.CircuitFreePathsExact{},
		"route-only":    baselines.RouteOnly{},
		"schedule-only": baselines.ScheduleOnly{},
		"sebf":          baselines.SEBF{},
		"fair":          baselines.FairSharing{},
		"baseline":      baselines.Baseline{},
	}

	runOne := func(name string, s experiments.Scheduler) error {
		rng := rand.New(rand.NewSource(*seed + 1))
		cs, err := s.Schedule(inst, rng)
		if err != nil {
			return err
		}
		if *validate {
			if err := cs.Validate(inst); err != nil {
				return err
			}
		}
		fmt.Fprintf(stdout, "%-15s total weighted completion time = %.2f (makespan %.2f)\n",
			s.Name(), cs.Objective(inst), cs.Makespan())
		return nil
	}

	switch *schedulerName {
	case "all":
		order := []string{"lp", "route-only", "schedule-only", "sebf", "fair", "baseline"}
		for _, name := range order {
			if err := runOne(name, schedulers[name]); err != nil {
				return err
			}
		}
	case "lp-given":
		if err := inst.AssignShortestPaths(); err != nil {
			return err
		}
		res, err := (core.CircuitGivenPaths{}).ScheduleASAP(inst)
		if err != nil {
			return err
		}
		if *validate {
			if err := res.Schedule.Validate(inst); err != nil {
				return err
			}
		}
		fmt.Fprintf(stdout, "%-15s total weighted completion time = %.2f (LP lower bound %.2f, ratio %.2f)\n",
			"LP (given paths)", res.Objective(inst), core.CombinedLowerBound(inst, res), res.ApproximationRatio(inst))
	case "lp":
		// Run via the rich API so the lower bound can be reported.
		res, err := (core.CircuitFreePaths{Opts: core.Options{CandidatePaths: *candidates}}).ScheduleASAP(inst, rand.New(rand.NewSource(*seed+1)))
		if err != nil {
			return err
		}
		if *validate {
			if err := res.Schedule.Validate(inst); err != nil {
				return err
			}
		}
		lb := core.CombinedLowerBound(inst, res)
		fmt.Fprintf(stdout, "%-15s total weighted completion time = %.2f (certified lower bound %.2f, ratio %.2f)\n",
			"LP-Based", res.Objective(inst), lb, res.Objective(inst)/lb)
	default:
		s, ok := schedulers[*schedulerName]
		if !ok {
			return fmt.Errorf("unknown scheduler %q", *schedulerName)
		}
		return runOne(*schedulerName, s)
	}
	return nil
}

func loadOrGenerate(path, topology string, fatK, nodes, coflows, width int, meanSize, meanRelease, meanWeight float64, seed int64) (*coflow.Instance, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return coflow.ReadJSON(f)
	}
	var g *graph.Graph
	switch topology {
	case "fattree":
		g = graph.FatTree(fatK, 1)
	case "star":
		g = graph.Star(nodes, 1)
	case "ring":
		g = graph.Ring(nodes, 1)
	case "line":
		g = graph.Line(nodes, 1)
	case "grid":
		g = graph.Grid(nodes, nodes, 1)
	case "triangle":
		g = graph.Triangle()
	default:
		return nil, fmt.Errorf("unknown topology %q", topology)
	}
	rng := rand.New(rand.NewSource(seed))
	return workload.Generate(g, workload.Config{
		NumCoflows: coflows, Width: width,
		MeanSize: meanSize, MeanRelease: meanRelease, MeanWeight: meanWeight,
	}, rng)
}
