package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSEBFOnGeneratedInstance(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-scheduler", "sebf", "-topology", "star", "-nodes", "4", "-coflows", "2", "-width", "2", "-seed", "3"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := stdout.String()
	if !strings.Contains(out, "total weighted completion time") {
		t.Errorf("missing objective line in output:\n%s", out)
	}
	if !strings.Contains(out, "2 coflows") {
		t.Errorf("missing instance summary in output:\n%s", out)
	}
}

func TestRunInstanceFile(t *testing.T) {
	// End-to-end with coflowgen's JSON format: write a tiny instance by hand
	// and schedule it.
	path := filepath.Join(t.TempDir(), "inst.json")
	instJSON := `{
	  "nodes": [{"name":"a","kind":0},{"name":"b","kind":0},{"name":"sw","kind":3}],
	  "edges": [
	    {"from":0,"to":2,"capacity":1},{"from":2,"to":0,"capacity":1},
	    {"from":1,"to":2,"capacity":1},{"from":2,"to":1,"capacity":1}
	  ],
	  "coflows": [{"name":"c0","weight":1,"flows":[{"source":0,"dest":1,"size":2,"release":0}]}]
	}`
	if err := os.WriteFile(path, []byte(instJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scheduler", "fair", "-instance", path}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "total weighted completion time") {
		t.Errorf("missing objective line:\n%s", stdout.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scheduler", "quantum-annealer"}, &stdout, &stderr); err == nil {
		t.Errorf("unknown scheduler accepted")
	}
	if err := run([]string{"-topology", "klein-bottle"}, &stdout, &stderr); err == nil {
		t.Errorf("unknown topology accepted")
	}
	if err := run([]string{"-instance", "/does/not/exist.json"}, &stdout, &stderr); err == nil {
		t.Errorf("missing instance file accepted")
	}
}
