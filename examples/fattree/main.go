// Fattree: a Figure 3 / Figure 4 style comparison on a fat-tree datacenter
// topology. The example generates a random Poisson coflow workload (as in the
// paper's §4.1), runs the LP-based scheduler and the three competing
// heuristics, and prints the totals plus the improvement of LP-Based over
// each — the same quantities the paper's bar charts report.
//
// Run with:
//
//	go run ./examples/fattree            # 16-server fat-tree, quick
//	go run ./examples/fattree -fatk 8    # the paper's 128-server topology (slow)
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"coflowsched/internal/baselines"
	"coflowsched/internal/core"
	"coflowsched/internal/experiments"
	"coflowsched/internal/graph"
	"coflowsched/internal/stats"
	"coflowsched/internal/workload"
)

func main() {
	fatK := flag.Int("fatk", 4, "fat-tree arity (8 = the paper's 128 servers)")
	coflows := flag.Int("coflows", 5, "number of coflows")
	width := flag.Int("width", 4, "flows per coflow")
	seed := flag.Int64("seed", 5, "random seed")
	flag.Parse()

	g := graph.FatTree(*fatK, 1)
	rng := rand.New(rand.NewSource(*seed))
	inst, err := workload.Generate(g, workload.Config{
		NumCoflows: *coflows, Width: *width, MeanSize: 4, MeanRelease: 2, MeanWeight: 1,
	}, rng)
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	fmt.Printf("topology: %s\n", g)
	fmt.Printf("workload: %d coflows x %d flows, total size %.0f\n\n",
		*coflows, *width, inst.TotalSize())

	schedulers := []experiments.Scheduler{
		core.CircuitFreePaths{},
		baselines.RouteOnly{},
		baselines.ScheduleOnly{},
		baselines.Baseline{},
	}
	var lpTotal float64
	for i, s := range schedulers {
		srng := rand.New(rand.NewSource(*seed + int64(i)))
		cs, err := s.Schedule(inst, srng)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		if err := cs.Validate(inst); err != nil {
			log.Fatalf("%s produced an infeasible schedule: %v", s.Name(), err)
		}
		total := cs.Objective(inst)
		if i == 0 {
			lpTotal = total
			fmt.Printf("%-15s %10.2f\n", s.Name(), total)
			continue
		}
		fmt.Printf("%-15s %10.2f   (LP-Based is %.0f%% better)\n",
			s.Name(), total, stats.ImprovementPercent(lpTotal, total))
	}
}
