// Packets: packet-based coflows (§3 of the paper) on a mesh. Every flow is a
// single packet; at each discrete step an edge can carry one packet. The
// example compares the §3.1 algorithm (paths given: LP + unit-time job-shop
// list scheduling) with the §3.2 algorithm (paths not given: LP + earliest-
// arrival routing over the time-expanded graph), on the same workload.
//
// Run with:
//
//	go run ./examples/packets
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"coflowsched/internal/core"
	"coflowsched/internal/graph"
	"coflowsched/internal/workload"
)

func main() {
	rows := flag.Int("rows", 3, "grid rows")
	cols := flag.Int("cols", 4, "grid columns")
	coflows := flag.Int("coflows", 4, "number of coflows")
	width := flag.Int("width", 4, "packets per coflow")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	g := graph.Grid(*rows, *cols, 1)
	rng := rand.New(rand.NewSource(*seed))
	inst, err := workload.Generate(g, workload.Config{
		NumCoflows: *coflows, Width: *width, PacketModel: true, MeanRelease: 1,
	}, rng)
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	fmt.Printf("topology: %s, %d coflows x %d packets\n\n", g, *coflows, *width)

	// §3.1 — paths given: pin every packet to a shortest path, then schedule.
	withPaths := inst.Clone()
	if err := withPaths.AssignShortestPaths(); err != nil {
		log.Fatal(err)
	}
	given, err := (core.PacketGivenPaths{}).Schedule(withPaths)
	if err != nil {
		log.Fatalf("packet given paths: %v", err)
	}
	if err := given.Schedule.Validate(withPaths); err != nil {
		log.Fatalf("infeasible: %v", err)
	}
	fmt.Printf("§3.1 paths given    : total weighted completion %.0f (makespan %.0f, LP bound %.1f)\n",
		given.Objective(withPaths), given.Schedule.Makespan(), given.LowerBound)

	// §3.2 — paths not given: the algorithm routes and schedules.
	free, err := (core.PacketFreePaths{}).ScheduleASAP(inst, rng)
	if err != nil {
		log.Fatalf("packet free paths: %v", err)
	}
	if err := free.Schedule.Validate(inst); err != nil {
		log.Fatalf("infeasible: %v", err)
	}
	fmt.Printf("§3.2 paths not given: total weighted completion %.0f (makespan %.0f, LP bound %.1f)\n",
		free.Objective(inst), free.Schedule.Makespan(), free.LowerBound)

	phased, err := (core.PacketFreePaths{}).SchedulePhased(inst, rng)
	if err != nil {
		log.Fatalf("packet phased: %v", err)
	}
	fmt.Printf("§3.2 phased rounding: total weighted completion %.0f (makespan %.0f)\n",
		phased.Objective(inst), phased.Schedule.Makespan())
	fmt.Println("\nFree routing lets packets fan out over the mesh instead of queueing on the")
	fmt.Println("shortest paths, which is the point of the §3.2 time-expanded-graph algorithm.")
}
