// Quickstart: build a small network, describe two coflows, run the LP-based
// scheduler, and print the schedule it produces.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"coflowsched/internal/coflow"
	"coflowsched/internal/core"
	"coflowsched/internal/graph"
)

func main() {
	// A 4-host star around one switch, 1 Gb/s (=1.0) links.
	g := graph.Star(4, 1.0)
	h := g.Hosts()

	// Two coflows: a shuffle-like coflow from h0/h1 into h2, and a single
	// urgent transfer (weight 3) from h3 to h0 released at time 1.
	inst := &coflow.Instance{
		Network: g,
		Coflows: []coflow.Coflow{
			{
				Name:   "shuffle",
				Weight: 1,
				Flows: []coflow.Flow{
					{Source: h[0], Dest: h[2], Size: 3},
					{Source: h[1], Dest: h[2], Size: 2},
				},
			},
			{
				Name:   "urgent",
				Weight: 3,
				Flows: []coflow.Flow{
					{Source: h[3], Dest: h[0], Size: 1, Release: 1},
				},
			},
		},
	}
	if err := inst.Validate(false); err != nil {
		log.Fatalf("invalid instance: %v", err)
	}

	// The LP-based scheduler (paths chosen by the LP, flows started as early
	// as possible in LP priority order — the paper's practical mode).
	sched := core.CircuitFreePaths{}
	res, err := sched.ScheduleASAP(inst, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatalf("scheduling failed: %v", err)
	}
	if err := res.Schedule.Validate(inst); err != nil {
		log.Fatalf("schedule is infeasible: %v", err)
	}

	fmt.Printf("total weighted coflow completion time: %.2f\n", res.Objective(inst))
	fmt.Printf("certified lower bound:                 %.2f\n", core.CombinedLowerBound(inst, res))
	fmt.Println()
	completions := res.Schedule.CompletionTimes()
	perCoflow := inst.CoflowCompletionTimes(completions)
	for i, cf := range inst.Coflows {
		fmt.Printf("coflow %-8s (weight %.0f) completes at %.2f\n", cf.Name, cf.Weight, perCoflow[i])
		for j := range cf.Flows {
			ref := coflow.FlowRef{Coflow: i, Index: j}
			fs := res.Schedule.Get(ref)
			fmt.Printf("  flow %s: %d-hop path, done at %.2f\n", ref, len(fs.Path), fs.CompletionTime())
		}
	}
}
