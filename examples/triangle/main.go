// Triangle: the paper's Figure 1 walkthrough. Three coflows compete on a
// triangle network with unit link capacities; the example prints the total
// completion time of fair sharing (s1), strict coflow priority (s2), and the
// LP-based schedule (s3), reproducing the figure's "10 vs 8 vs optimal"
// narrative.
//
// Run with:
//
//	go run ./examples/triangle
package main

import (
	"fmt"
	"log"

	"coflowsched/internal/experiments"
)

func main() {
	res, err := experiments.Figure1()
	if err != nil {
		log.Fatalf("figure 1: %v", err)
	}
	fmt.Print(res)
	fmt.Println()
	fmt.Println("The LP-based schedule lets coflow C run beside coflow A (they share no link)")
	fmt.Println("and squeezes coflow B into the gap left on edge y->z, which is exactly the")
	fmt.Println("insight behind the paper's Figure 1 optimal schedule (s3).")
}
