// Benchmarks that regenerate (at reduced, benchmark-friendly scale) every
// table and figure of the paper's evaluation, plus micro-benchmarks for the
// substrates the algorithms are built on. See EXPERIMENTS.md for the mapping
// between benchmarks and the paper's tables/figures, and cmd/coflowbench for
// full-size runs.
package main

import (
	"math/rand"
	"testing"

	"coflowsched/internal/baselines"
	"coflowsched/internal/coflow"
	"coflowsched/internal/core"
	"coflowsched/internal/experiments"
	"coflowsched/internal/graph"
	"coflowsched/internal/lp"
	"coflowsched/internal/packet"
	"coflowsched/internal/timeexp"
	"coflowsched/internal/workload"
)

// benchInstance draws a reproducible workload on a 16-server fat-tree.
func benchInstance(b *testing.B, coflows, width int) *coflow.Instance {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	inst, err := workload.Generate(graph.FatTree(4, 1), workload.Config{
		NumCoflows: coflows, Width: width, MeanSize: 4, MeanRelease: 2, MeanWeight: 1,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// --- Figure 1: the triangle example -----------------------------------------

// BenchmarkFigure1Triangle regenerates the paper's Figure 1 comparison (fair
// sharing vs coflow priority vs the LP-based schedule on the triangle
// network).
func BenchmarkFigure1Triangle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if !(res.LPBased < res.Priority && res.Priority < res.FairSharing) {
			b.Fatalf("figure 1 ordering violated: %+v", res)
		}
	}
}

// --- Figure 2: time-expanded graphs ------------------------------------------

// BenchmarkFigure2TimeExpandedRouting exercises the §3.2 substrate the
// paper's Figure 2 illustrates: building the time-expanded graph of a mesh
// and routing a batch of packets through it with earliest-arrival search.
func BenchmarkFigure2TimeExpandedRouting(b *testing.B) {
	g := graph.Grid(4, 4, 1)
	hosts := g.Hosts()
	te := timeexp.New(g, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occupied := map[[2]int]bool{}
		occ := func(e graph.EdgeID, t int) bool { return occupied[[2]int{int(e), t}] }
		for p := 0; p < 16; p++ {
			src := hosts[p%len(hosts)]
			dst := hosts[(p*7+5)%len(hosts)]
			if src == dst {
				continue
			}
			moves := te.EarliestArrival(src, dst, 0, occ)
			for _, m := range moves {
				occupied[[2]int{int(m.Edge), m.Time}] = true
			}
		}
	}
}

// --- Table 1: approximation ratios per model ---------------------------------

// BenchmarkTable1ApproximationRatios measures all four model variants
// (packet/circuit x given/free paths) against their certified lower bounds.
func BenchmarkTable1ApproximationRatios(b *testing.B) {
	cfg := experiments.DefaultTable1Config()
	cfg.Trials = 1
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.MaxRatio > 17.6 {
				b.Fatalf("ratio above the proven constant: %+v", row)
			}
		}
	}
}

// --- Figure 3: total weighted completion time vs coflow width ----------------

func benchmarkFigure3Width(b *testing.B, width int) {
	cfg := experiments.DefaultConfig()
	cfg.Trials = 1
	g := graph.FatTree(cfg.FatK, 1)
	schedulers := cfg.Schedulers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		means, err := cfg.SweepPoint(g, cfg.NumCoflows, width, schedulers)
		if err != nil {
			b.Fatal(err)
		}
		if means[0] <= 0 {
			b.Fatal("LP-Based produced a zero objective")
		}
	}
}

// BenchmarkFigure3Width4 is one x-axis point of Figure 3 (width 4): all four
// schedulers on the same random instance.
func BenchmarkFigure3Width4(b *testing.B) { benchmarkFigure3Width(b, 4) }

// BenchmarkFigure3Width8 is the width-8 point of Figure 3.
func BenchmarkFigure3Width8(b *testing.B) { benchmarkFigure3Width(b, 8) }

// --- Figure 4: total weighted completion time vs number of coflows -----------

func benchmarkFigure4Coflows(b *testing.B, coflows int) {
	cfg := experiments.DefaultConfig()
	cfg.Trials = 1
	g := graph.FatTree(cfg.FatK, 1)
	schedulers := cfg.Schedulers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		means, err := cfg.SweepPoint(g, coflows, cfg.Width, schedulers)
		if err != nil {
			b.Fatal(err)
		}
		if means[0] <= 0 {
			b.Fatal("LP-Based produced a zero objective")
		}
	}
}

// BenchmarkFigure4Coflows4 is the 4-coflow point of Figure 4.
func BenchmarkFigure4Coflows4(b *testing.B) { benchmarkFigure4Coflows(b, 4) }

// BenchmarkFigure4Coflows8 is the 8-coflow point of Figure 4.
func BenchmarkFigure4Coflows8(b *testing.B) { benchmarkFigure4Coflows(b, 8) }

// --- Ablations ----------------------------------------------------------------

// BenchmarkAblationEpsilon compares LP sizes/solve times as the interval
// granularity ε shrinks (design choice (a) in DESIGN.md).
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, eps := range []float64{2, 1, 0.5} {
		b.Run(benchName("eps", eps), func(b *testing.B) {
			inst := benchInstance(b, 3, 3)
			sched := core.CircuitFreePaths{Opts: core.Options{Epsilon: eps, CandidatePaths: 2}}
			rng := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sched.ScheduleASAP(inst, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCandidatePaths compares the restricted routing LP with 1,
// 2 and 4 candidate paths per flow (design choice (b)).
func BenchmarkAblationCandidatePaths(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(benchName("K", float64(k)), func(b *testing.B) {
			inst := benchInstance(b, 3, 3)
			sched := core.CircuitFreePaths{Opts: core.Options{CandidatePaths: k}}
			rng := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sched.ScheduleASAP(inst, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRounding compares the practical ASAP mode against the
// paper's interval-placement rounding on identical instances (design choice
// (c)).
func BenchmarkAblationRounding(b *testing.B) {
	inst := benchInstance(b, 3, 3)
	sched := core.CircuitFreePaths{Opts: core.Options{CandidatePaths: 2}}
	b.Run("asap", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < b.N; i++ {
			if _, err := sched.ScheduleASAP(inst, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interval-placement", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < b.N; i++ {
			if _, err := sched.ScheduleProvable(inst, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Substrate micro-benchmarks ----------------------------------------------

// BenchmarkLPSolveIntervalIndexed measures the simplex on a representative
// interval-indexed LP (the given-paths formulation).
func BenchmarkLPSolveIntervalIndexed(b *testing.B) {
	inst := benchInstance(b, 4, 4)
	if err := inst.AssignShortestPaths(); err != nil {
		b.Fatal(err)
	}
	sched := core.CircuitGivenPaths{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ScheduleASAP(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPSolverDense measures the raw simplex on a dense synthetic LP.
func BenchmarkLPSolverDense(b *testing.B) {
	build := func() *lp.Problem {
		p := lp.NewProblem(lp.Minimize)
		const n, m = 60, 40
		vars := make([]lp.Var, n)
		for j := 0; j < n; j++ {
			vars[j] = p.AddVariable("", 0, lp.Inf, float64(j%7+1))
		}
		for i := 0; i < m; i++ {
			terms := make([]lp.Term, n)
			for j := 0; j < n; j++ {
				terms[j] = lp.Term{Var: vars[j], Coef: float64((i*j)%5 + 1)}
			}
			p.AddConstraint("", lp.GE, float64(10+i), terms...)
		}
		return p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build().Solve(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowDecomposition measures max-flow plus thickest-path
// decomposition on a fat-tree, the core of the §2.2 rounding.
func BenchmarkFlowDecomposition(b *testing.B) {
	g := graph.FatTree(4, 1)
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val, flow := g.MaxFlow(src, dst)
		paths := g.DecomposeFlow(src, dst, flow)
		if graph.TotalAmount(paths) < val-1e-6 {
			b.Fatal("decomposition lost flow")
		}
	}
}

// BenchmarkFlowSimulator measures the event-driven flow-level simulator on a
// contended workload (the §4.1 substrate).
func BenchmarkFlowSimulator(b *testing.B) {
	inst := benchInstance(b, 8, 8)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (baselines.ScheduleOnly{}).Schedule(inst, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketListScheduling measures the §3.1 job-shop list scheduler.
func BenchmarkPacketListScheduling(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	inst, err := workload.Generate(graph.Grid(4, 4, 1), workload.Config{
		NumCoflows: 8, Width: 6, PacketModel: true, MeanRelease: 2,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	paths := map[coflow.FlowRef]graph.Path{}
	for _, ref := range inst.FlowRefs() {
		f := inst.Flow(ref)
		paths[ref] = inst.Network.ShortestPath(f.Source, f.Dest)
	}
	order := inst.FlowRefs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := packet.ListSchedule(inst, paths, order, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchName formats sub-benchmark labels without fmt noise in the hot path.
func benchName(prefix string, v float64) string {
	if v == float64(int(v)) {
		return prefix + "=" + itoa(int(v))
	}
	return prefix + "=0.5"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	digits := ""
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return digits
}
